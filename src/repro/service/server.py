"""The asyncio front end: sockets in, acks and match events out.

:class:`MonitorServer` listens on one TCP port and speaks two things:

* the **line protocol** (:mod:`repro.service.protocol`) — producers
  push batched ticks for one logical stream per connection, subscribers
  receive match-event frames with per-subscriber stream/query
  filtering, and control connections drive the live query lifecycle;
* **HTTP GET** — ``/metrics`` answers Prometheus text exposition for
  the shared registry (monitor ``spring_*`` families plus the
  ``service_*`` taxonomy) and ``/healthz`` answers ``ok``; any scraper
  or ``curl`` works with no extra port.

Concurrency model
-----------------
The asyncio loop owns every socket; the engine thread owns the
monitor.  A producer connection pipelines: the read loop validates
frames and submits pushes to the engine, while a per-connection ack
task awaits results in submission order and writes ``ack`` frames —
so the wire stays full up to the credit window without ever reordering
acks.  Match events cross back from the engine thread via
``call_soon_threadsafe`` and fan out to per-subscriber bounded queues;
a subscriber whose queue overflows (too slow for the event rate, with
the TCP buffer already full) is **evicted** rather than allowed to
stall the engine or its peers.

Backpressure
------------
Explicit and credit-based: the ``hello_ack`` grants a per-stream
window of ``credit_window`` ticks, every ``ack`` reports the remaining
credit, and a producer that overruns the window is disconnected with a
``credit_exceeded`` error.  With an honoured window ``W``, the
``service_inflight_peak_ticks`` gauge can never exceed ``W`` — the
conformance tests assert that bound through the metrics registry.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set

from repro.core.monitor import MatchEvent
from repro.exceptions import ServiceError
from repro.obs.prometheus import http_response, render_http
from repro.obs.service import ServiceMetrics
from repro.service import protocol
from repro.service.engine import EngineConfig, ServiceEngine

__all__ = ["MonitorServer", "ServerHandle", "start_in_thread"]

_HTTP_METHODS = (
    b"GET ", b"HEAD ", b"POST ", b"PUT ", b"DELETE ", b"OPTIONS ", b"PATCH ",
)


class _Subscriber:
    """One subscriber connection: filters plus a bounded event queue."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        streams: Optional[Sequence[str]],
        queries: Optional[Sequence[str]],
        maxsize: int,
    ) -> None:
        self.writer = writer
        self.streams = set(streams) if streams is not None else None
        self.queries = set(queries) if queries is not None else None
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue(maxsize=maxsize)
        self.task: Optional[asyncio.Task] = None
        self.evicted = False

    def matches(self, stream: str, query: str) -> bool:
        if self.streams is not None and stream not in self.streams:
            return False
        if self.queries is not None and query not in self.queries:
            return False
        return True

    def offer(self, data: bytes) -> bool:
        """Enqueue one event frame; False means the queue overflowed."""
        try:
            self.queue.put_nowait(data)
        except asyncio.QueueFull:
            return False
        return True


class MonitorServer:
    """Serve the line protocol and /metrics for one engine."""

    def __init__(
        self,
        engine_config: EngineConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        credit_window: int = protocol.DEFAULT_CREDIT_WINDOW,
        max_batch: int = protocol.DEFAULT_MAX_BATCH,
        subscriber_queue: int = protocol.DEFAULT_SUBSCRIBER_QUEUE,
        max_line: int = protocol.DEFAULT_MAX_LINE,
        registry=None,
    ) -> None:
        if int(credit_window) < 1:
            raise ServiceError("credit_window must be >= 1")
        if int(max_batch) < 1:
            raise ServiceError("max_batch must be >= 1")
        self.host = host
        self.port = int(port)
        self.credit_window = int(credit_window)
        self.max_batch = int(max_batch)
        self.subscriber_queue = int(subscriber_queue)
        self.max_line = int(max_line)
        self.metrics = ServiceMetrics(registry)
        self.engine = ServiceEngine(
            engine_config, metrics=self.metrics, on_event=self._on_engine_event
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._subscribers: Set[_Subscriber] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the engine thread, bind the socket, begin accepting."""
        self._loop = asyncio.get_running_loop()
        self.engine.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=self.max_line,
            )
        except OSError as err:
            self.engine.stop(checkpoint=False)
            raise ServiceError(
                f"cannot bind {self.host}:{self.port}: {err}"
            ) from err
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, checkpoint: bool = True) -> None:
        """Stop accepting, drop connections, stop the engine."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for sub in list(self._subscribers):
            self._evict(sub, reason="shutdown")
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.engine.stop(checkpoint=checkpoint)
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("server is not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Event fan-out (engine thread -> loop -> subscriber queues)
    # ------------------------------------------------------------------

    def _on_engine_event(self, stream: str, seq: int, event: MatchEvent) -> None:
        data = protocol.encode_event(stream, seq, event)
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._fanout, stream, event.query, data)
        except RuntimeError:  # loop shut down mid-call
            pass

    def _fanout(self, stream: str, query: str, data: bytes) -> None:
        for sub in list(self._subscribers):
            if sub.evicted or not sub.matches(stream, query):
                continue
            if not sub.offer(data):
                self._evict(sub, reason="slow consumer")

    def _evict(self, sub: _Subscriber, reason: str) -> None:
        if sub.evicted:
            return
        sub.evicted = True
        self._subscribers.discard(sub)
        self.metrics.subscribers.set(float(len(self._subscribers)))
        if reason == "slow consumer":
            self.metrics.evictions.inc()
        if sub.task is not None:
            sub.task.cancel()
        try:
            sub.writer.close()
        except RuntimeError:  # pragma: no cover - loop tearing down
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            try:
                first = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._reply_oversized(writer)
                return
            if not first:
                return
            if any(first.startswith(m) for m in _HTTP_METHODS):
                await self._http_session(reader, writer, first)
            else:
                await self._line_session(reader, writer, first)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:
            # Connection tasks are only cancelled by stop(); finishing
            # cleanly here keeps asyncio's stream machinery from
            # logging the cancellation as a connection-handler error.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError, asyncio.CancelledError):
                pass

    async def _reply_oversized(self, writer: asyncio.StreamWriter) -> None:
        self.metrics.record_error("oversized_line")
        await self._send(
            writer,
            protocol.error_frame(
                "oversized_line",
                f"line exceeds max_line={self.max_line} bytes",
            ),
        )

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.encode_frame(frame))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- HTTP ----------------------------------------------------------

    async def _http_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> None:
        # Drain the (bounded) header block so the client sees a clean
        # close after our HTTP/1.0 response.
        for _ in range(100):
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            except (ValueError, asyncio.LimitOverrunError, asyncio.TimeoutError):
                break
            if line in (b"\r\n", b"\n", b""):
                break
        parts = request_line.split()
        method = parts[0].decode("ascii", "replace") if parts else "?"
        path = parts[1].decode("ascii", "replace") if len(parts) > 1 else "/"
        path = path.split("?", 1)[0]
        self.metrics.http_requests.labels(path=path).inc()
        if method != "GET":
            body = http_response(
                405, b"only GET is supported\n", "text/plain; charset=utf-8"
            )
        elif path == "/metrics":
            body = render_http(self.metrics.registry)
        elif path == "/healthz":
            running = self.engine.running
            body = http_response(
                200 if running else 500,
                b"ok\n" if running else b"engine down\n",
                "text/plain; charset=utf-8",
            )
        else:
            body = http_response(
                404, f"no such path: {path}\n".encode(), "text/plain; charset=utf-8"
            )
        writer.write(body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- line protocol: hello dispatch ---------------------------------

    async def _line_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_line: bytes,
    ) -> None:
        try:
            frame = protocol.decode_frame(first_line)
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame())
            return
        if frame.get("type") != "hello":
            self.metrics.record_error("bad_hello")
            await self._send(
                writer,
                protocol.error_frame(
                    "bad_hello",
                    f"first frame must be hello, got {frame.get('type')!r}",
                ),
            )
            return
        role = frame.get("role")
        if role not in protocol.ROLES:
            self.metrics.record_error("bad_hello")
            await self._send(
                writer,
                protocol.error_frame(
                    "bad_hello",
                    f"role must be one of {list(protocol.ROLES)}, got {role!r}",
                ),
            )
            return
        self.metrics.record_frame("hello")
        self.metrics.connections.labels(role=role).inc()
        if role == "producer":
            await self._producer_session(reader, writer, frame)
        elif role == "subscriber":
            await self._subscriber_session(reader, writer, frame)
        else:
            await self._control_session(reader, writer)

    async def _read_frame(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        """One validated frame, None on EOF, False on a fatal line error.

        Non-fatal protocol errors are answered inline and reading
        continues — a malformed frame never takes the connection (or
        any other connection) down.
        """
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._reply_oversized(writer)
                return False
            if not line:
                return None
            try:
                frame = protocol.decode_frame(line)
            except protocol.ProtocolError as err:
                self.metrics.record_error(err.code)
                await self._send(writer, err.frame())
                continue
            self.metrics.record_frame(str(frame.get("type")))
            return frame

    # -- producers -----------------------------------------------------

    async def _producer_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict,
    ) -> None:
        try:
            stream = protocol.require_name(hello, "stream")
            watermark = await asyncio.wrap_future(
                self.engine.submit_ensure_stream(stream)
            )
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame())
            return
        except ServiceError as err:
            await self._send(writer, protocol.error_frame("state", str(err)))
            return
        await self._send(
            writer,
            {
                "type": "hello_ack",
                "version": protocol.PROTOCOL_VERSION,
                "role": "producer",
                "stream": stream,
                "watermark": int(watermark),
                "seq": self.engine.sequence(stream),
                "credit": self.credit_window,
                "max_batch": self.max_batch,
            },
        )
        state = {"inflight": 0}
        acks: "asyncio.Queue" = asyncio.Queue()
        fatal = asyncio.Event()
        ack_task = asyncio.ensure_future(
            self._ack_writer(writer, stream, state, acks, fatal)
        )
        try:
            while not fatal.is_set():
                frame = await self._read_frame(reader, writer)
                if frame is None or frame is False:
                    break
                ftype = frame["type"]
                if ftype == "push":
                    ok = await self._handle_push_frame(
                        writer, stream, frame, state, acks
                    )
                    if not ok:
                        break
                elif ftype == "ping":
                    await self._send(writer, {"type": "pong"})
                elif ftype == "bye":
                    await self._flush_acks(acks)
                    await self._send(
                        writer,
                        {
                            "type": "goodbye",
                            "watermark": self.engine.watermark(stream),
                        },
                    )
                    break
                else:
                    self.metrics.record_error("unknown_type")
                    await self._send(
                        writer,
                        protocol.error_frame(
                            "unknown_type",
                            f"unexpected frame type {ftype!r} on a "
                            "producer connection",
                        ),
                    )
        finally:
            if not ack_task.done():
                # Let queued acks finish before tearing down so a
                # half-closed client still receives its watermarks.
                await self._flush_acks(acks)
                ack_task.cancel()
            await asyncio.gather(ack_task, return_exceptions=True)

    async def _flush_acks(self, acks: "asyncio.Queue") -> None:
        while not acks.empty():
            await asyncio.sleep(0.001)

    async def _handle_push_frame(
        self,
        writer: asyncio.StreamWriter,
        stream: str,
        frame: dict,
        state: dict,
        acks: "asyncio.Queue",
    ) -> bool:
        seq = frame.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            self.metrics.record_error("bad_frame")
            await self._send(
                writer,
                protocol.error_frame(
                    "bad_frame", "'seq' must be a non-negative integer"
                ),
            )
            return True
        first = frame.get("first")
        if first is not None and (
            not isinstance(first, int) or isinstance(first, bool) or first < 1
        ):
            self.metrics.record_error("bad_frame")
            await self._send(
                writer,
                protocol.error_frame(
                    "bad_frame", "'first' must be a positive integer tick",
                    seq=seq,
                ),
            )
            return True
        try:
            values = protocol.decode_values(
                frame.get("values"), self.max_batch
            )
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame(seq=seq))
            return True
        n = int(values.shape[0])
        if state["inflight"] + n > self.credit_window:
            self.metrics.record_error("credit_exceeded")
            await self._send(
                writer,
                protocol.error_frame(
                    "credit_exceeded",
                    f"{state['inflight']} ticks in flight + {n} pushed "
                    f"exceeds the credit window of {self.credit_window}",
                    seq=seq,
                ),
            )
            return False
        state["inflight"] += n
        self.metrics.record_inflight(stream, state["inflight"])
        try:
            future = self.engine.submit_push(stream, values, first)
        except ServiceError as err:
            state["inflight"] -= n
            await self._send(
                writer, protocol.error_frame("state", str(err), seq=seq)
            )
            return False
        acks.put_nowait((seq, n, perf_counter(), future))
        return True

    async def _ack_writer(
        self,
        writer: asyncio.StreamWriter,
        stream: str,
        state: dict,
        acks: "asyncio.Queue",
        fatal: asyncio.Event,
    ) -> None:
        while True:
            seq, n, started, future = await acks.get()
            try:
                result = await asyncio.wrap_future(future)
            except protocol.ProtocolError as err:
                state["inflight"] -= n
                self.metrics.record_inflight(stream, state["inflight"])
                self.metrics.record_error(err.code)
                await self._send(
                    writer,
                    err.frame(seq=seq, watermark=self.engine.watermark(stream)),
                )
                continue
            except (ServiceError, Exception) as err:  # engine crash
                state["inflight"] -= n
                fatal.set()
                await self._send(
                    writer, protocol.error_frame("state", str(err), seq=seq)
                )
                return
            state["inflight"] -= n
            self.metrics.record_inflight(stream, state["inflight"])
            self.metrics.ack_latency.observe(perf_counter() - started)
            ack = {
                "type": "ack",
                "seq": seq,
                "applied": result.applied,
                "trimmed": result.trimmed,
                "watermark": result.watermark,
                "credit": self.credit_window - state["inflight"],
            }
            if result.error is not None:
                code, detail = result.error
                self.metrics.record_error(code)
                ack["error"] = {"code": code, "detail": detail}
            await self._send(writer, ack)

    # -- subscribers ---------------------------------------------------

    async def _subscriber_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict,
    ) -> None:
        try:
            streams = protocol.optional_name_list(hello, "streams")
            queries = protocol.optional_name_list(hello, "queries")
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame())
            return
        sub = _Subscriber(writer, streams, queries, self.subscriber_queue)
        self._subscribers.add(sub)
        self.metrics.subscribers.set(float(len(self._subscribers)))
        await self._send(
            writer,
            {
                "type": "hello_ack",
                "version": protocol.PROTOCOL_VERSION,
                "role": "subscriber",
                "seqs": self.engine.sequences(),
                "watermarks": self.engine.watermarks(),
            },
        )
        sub.task = asyncio.ensure_future(self._subscriber_writer(sub))
        try:
            while not sub.evicted:
                frame = await self._read_frame(reader, writer)
                if frame is None or frame is False:
                    break
                ftype = frame["type"]
                if ftype == "ping":
                    await self._send(writer, {"type": "pong"})
                elif ftype == "bye":
                    await self._send(writer, {"type": "goodbye"})
                    break
                else:
                    self.metrics.record_error("unknown_type")
                    await self._send(
                        writer,
                        protocol.error_frame(
                            "unknown_type",
                            f"unexpected frame type {ftype!r} on a "
                            "subscriber connection",
                        ),
                    )
        finally:
            self._evict(sub, reason="disconnect")
            await asyncio.gather(sub.task, return_exceptions=True)

    async def _subscriber_writer(self, sub: _Subscriber) -> None:
        try:
            while True:
                data = await sub.queue.get()
                sub.writer.write(data)
                await sub.writer.drain()
                self.metrics.events_delivered.inc()
        except (ConnectionResetError, BrokenPipeError):
            self._evict(sub, reason="disconnect")
        except asyncio.CancelledError:
            raise

    # -- control -------------------------------------------------------

    async def _control_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._send(
            writer,
            {
                "type": "hello_ack",
                "version": protocol.PROTOCOL_VERSION,
                "role": "control",
            },
        )
        while True:
            frame = await self._read_frame(reader, writer)
            if frame is None or frame is False:
                return
            ftype = frame["type"]
            if ftype == "ping":
                await self._send(writer, {"type": "pong"})
            elif ftype == "bye":
                await self._send(writer, {"type": "goodbye"})
                return
            elif ftype == "stats":
                await self._control_submit(writer, "stats", None, None)
            elif ftype in ("register_query", "swap_query"):
                await self._query_mutation(writer, frame)
            elif ftype == "remove_query":
                try:
                    name = protocol.require_name(frame)
                except protocol.ProtocolError as err:
                    self.metrics.record_error(err.code)
                    await self._send(writer, err.frame())
                    continue
                await self._control_submit(
                    writer, "query", "remove", {"name": name}
                )
            else:
                self.metrics.record_error("unknown_type")
                await self._send(
                    writer,
                    protocol.error_frame(
                        "unknown_type",
                        f"unexpected frame type {ftype!r} on a control "
                        "connection",
                    ),
                )

    async def _query_mutation(
        self, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        op = "register" if frame["type"] == "register_query" else "swap"
        try:
            name = protocol.require_name(frame)
            query = protocol.decode_query_array(frame.get("query"))
            epsilon = protocol.require_epsilon(frame.get("epsilon"))
            kwargs = frame.get("kwargs") or {}
            if not isinstance(kwargs, dict):
                raise protocol.ProtocolError(
                    "bad_frame", "'kwargs' must be an object"
                )
            matcher = frame.get("matcher")
            if matcher is not None:
                if not isinstance(matcher, str):
                    raise protocol.ProtocolError(
                        "bad_frame", "'matcher' must be a string"
                    )
                kwargs = dict(kwargs, matcher=matcher)
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame())
            return
        payload = {
            "name": name,
            "query": query.tolist(),
            "epsilon": epsilon,
            "kwargs": kwargs,
        }
        await self._control_submit(writer, "query", op, payload)

    async def _control_submit(
        self,
        writer: asyncio.StreamWriter,
        kind: str,
        op: Optional[str],
        payload: Optional[dict],
    ) -> None:
        try:
            if kind == "stats":
                future = self.engine.submit_stats()
            else:
                future = self.engine.submit_query_op(op, payload)
            result = await asyncio.wrap_future(future)
        except protocol.ProtocolError as err:
            self.metrics.record_error(err.code)
            await self._send(writer, err.frame())
            return
        except (ServiceError, Exception) as err:
            await self._send(writer, protocol.error_frame("state", str(err)))
            return
        if kind == "stats":
            await self._send(writer, dict(result, type="stats"))
        else:
            await self._send(
                writer,
                {
                    "type": "ok",
                    "op": result["op"],
                    "name": result["name"],
                    "queries": result["queries"],
                    "watermarks": self.engine.watermarks(),
                },
            )


class ServerHandle:
    """A server running on its own loop thread (tests, embedding)."""

    def __init__(
        self,
        server: MonitorServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def engine(self) -> ServiceEngine:
        return self.server.engine

    @property
    def metrics(self) -> ServiceMetrics:
        return self.server.metrics

    def stop(self, checkpoint: bool = True) -> None:
        if not self.thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.server.stop(checkpoint=checkpoint), self.loop
        )
        try:
            fut.result(timeout=60.0)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=30.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(checkpoint=exc_type is None)


def start_in_thread(
    engine_config: EngineConfig, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> ServerHandle:
    """Run a :class:`MonitorServer` on a dedicated event-loop thread.

    Blocks until the socket is bound (or startup failed, re-raising the
    failure here); returns a :class:`ServerHandle` whose ``stop()`` is
    safe to call from any thread.
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            server = MonitorServer(engine_config, host=host, port=port, **kwargs)
            loop.run_until_complete(server.start())
            holder["server"] = server
        except BaseException as err:  # noqa: BLE001 - re-raised in caller
            holder["error"] = err
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name="service-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=120.0):
        raise ServiceError("server thread did not start in time")
    if "error" in holder:
        raise holder["error"]  # type: ignore[misc]
    return ServerHandle(holder["server"], holder["loop"], thread)  # type: ignore[arg-type]
