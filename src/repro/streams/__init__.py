"""Stream substrate: sources, fault injectors, buffers, stats, transforms."""

from repro.streams.buffer import RingBuffer, SharedRingBuffer
from repro.streams.faults import (
    CorruptSource,
    DropSource,
    DuplicateSource,
    FaultInjector,
    FlakySource,
    StallSource,
)
from repro.streams.source import (
    ArraySource,
    CsvSource,
    GeneratorSource,
    StreamSource,
    interleave,
)
from repro.streams.stats import EwmStats, RunningStats
from repro.streams.transforms import (
    add_noise,
    clip_range,
    dropout,
    quantize,
    time_scale,
)
from repro.streams.windows import Downsampler, RollingExtrema, RollingMean

__all__ = [
    "Downsampler",
    "RollingExtrema",
    "RollingMean",
    "RingBuffer",
    "SharedRingBuffer",
    "ArraySource",
    "CorruptSource",
    "CsvSource",
    "DropSource",
    "DuplicateSource",
    "FaultInjector",
    "FlakySource",
    "GeneratorSource",
    "StallSource",
    "StreamSource",
    "interleave",
    "EwmStats",
    "RunningStats",
    "add_noise",
    "clip_range",
    "dropout",
    "quantize",
    "time_scale",
]
