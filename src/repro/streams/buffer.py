"""Fixed-capacity ring buffers: in-process and shared-memory.

SPRING itself needs no history, but surrounding tooling does: examples
display the matched subsequence, the monitor CLI prints context windows,
and the SPRING(path) memory accounting wants the recent raw values.  A
ring buffer gives that with a hard memory cap — keeping the whole system
inside the constant-space story.

Two flavours:

* :class:`RingBuffer` — plain numpy storage inside one process.
* :class:`SharedRingBuffer` — the same fixed-capacity idea over
  :mod:`multiprocessing.shared_memory`, with one writer and a fixed set
  of reader cursors.  This is the data plane of the sharded runtime
  (:mod:`repro.runtime.shard`): the supervisor publishes stream values
  once, and each worker process consumes them at its own pace without
  copies through pipes or queues.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro._serde import decode_floats, encode_floats
from repro.exceptions import ValidationError

__all__ = ["RingBuffer", "SharedRingBuffer"]


class RingBuffer:
    """Keep the most recent ``capacity`` values of a scalar stream.

    Indexing is by absolute 1-based stream tick, so callers can slice by
    the positions SPRING reports without tracking offsets themselves.
    """

    def __init__(self, capacity: int) -> None:
        if int(capacity) < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.empty(self.capacity, dtype=np.float64)
        self._count = 0  # total values ever pushed == last absolute tick

    def push(self, value: float) -> None:
        """Append one value, evicting the oldest when full."""
        self._data[self._count % self.capacity] = value
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_pushed(self) -> int:
        """Absolute tick of the newest value (0 when empty)."""
        return self._count

    @property
    def oldest_tick(self) -> int:
        """Absolute 1-based tick of the oldest retained value."""
        if self._count == 0:
            raise ValidationError("buffer is empty")
        return max(1, self._count - self.capacity + 1)

    def latest(self, n: int) -> np.ndarray:
        """The ``n`` most recent values, oldest first."""
        n = min(n, len(self))
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return self.window(self._count - n + 1, self._count)

    def window(self, start_tick: int, end_tick: int) -> np.ndarray:
        """Values for absolute ticks ``start_tick..end_tick`` (inclusive).

        Raises when part of the window has been evicted — the caller
        sized the buffer too small for the query it is displaying.
        """
        if start_tick < 1 or end_tick < start_tick:
            raise ValidationError(
                f"invalid window [{start_tick}, {end_tick}]"
            )
        if end_tick > self._count:
            raise ValidationError(
                f"window end {end_tick} is in the future (now={self._count})"
            )
        if start_tick < self.oldest_tick:
            raise ValidationError(
                f"window start {start_tick} already evicted "
                f"(oldest retained: {self.oldest_tick})"
            )
        idx = (np.arange(start_tick - 1, end_tick)) % self.capacity
        return self._data[idx].copy()

    def state_dict(self) -> dict:
        """JSON-safe snapshot: capacity, total pushed, retained values."""
        n = len(self)
        values = self.latest(n) if n else np.empty(0, dtype=np.float64)
        return {
            "capacity": self.capacity,
            "count": self._count,
            "values": encode_floats(values),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RingBuffer":
        """Rebuild a buffer at the snapshot's own capacity.

        Unlike :meth:`load_state_dict` this never rejects on a capacity
        mismatch with some pre-existing buffer — callers restoring a
        checkpoint under a different configured capacity keep the
        snapshot's layout (the pruning engine relies on this so resumed
        parked spans replay exactly as they would have).
        """
        buffer = cls(int(state["capacity"]))
        buffer.load_state_dict(state)
        return buffer

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (capacity must match)."""
        if int(state["capacity"]) != self.capacity:
            raise ValidationError(
                f"buffer capacity mismatch: have {self.capacity}, "
                f"checkpoint has {state['capacity']}"
            )
        values = decode_floats(state["values"])
        # Replay the retained window so the modular layout is rebuilt
        # exactly: rewind the counter, then push the values back.
        self._count = int(state["count"]) - values.shape[0]
        for value in values:
            self.push(float(value))


class SharedRingBuffer:
    """Single-writer, multi-reader ring buffer over shared memory.

    One process (the *writer*, normally a shard supervisor) publishes a
    scalar stream; up to ``max_readers`` other processes consume it,
    each through its own cursor slot.  Values are addressed by absolute
    1-based stream tick, exactly like :class:`RingBuffer`, so readers
    can hand positions straight to matchers.

    Layout (all 8-byte aligned, fixed at creation)::

        int64[0]                write_seq  — total values ever published
        int64[1]                capacity
        int64[2]                max_readers
        int64[3 .. 3+R-1]       per-reader consumed counts
        float64[... capacity]   value slots (tick t lives at (t-1) % capacity)

    Publication is guarded by one shared ``multiprocessing.Lock``: the
    writer fills slots and advances ``write_seq`` inside a single
    critical section, and a reader snapshots the counter and copies its
    slots inside another.  The lock is not (primarily) about mutual
    exclusion — ownership already bounds who mutates what: only the
    writer moves ``write_seq`` and only reader ``r`` moves cursor ``r``.
    It is about *memory ordering*: plain numpy stores into shared
    memory carry no barrier, so on weakly-ordered CPUs (ARM64 — Apple
    Silicon, Graviton) a lock-free reader could observe an advanced
    ``write_seq`` before the slot data became visible and consume
    garbage.  The lock's acquire/release pairs impose the
    happens-before edges x86-TSO used to give for free, making a
    reader that observes ``write_seq == n`` guaranteed to see the
    slots for ticks ``<= n`` fully written.  The cost is per *batch*
    (one acquisition per ``push_many`` / ``read_new`` call), never per
    tick.

    The writer decides which cursors exert backpressure by passing the
    live reader ids to :meth:`push_many` / :meth:`free_space` — a dead
    worker's stalled cursor must not wedge the stream while the
    supervisor restarts it (the recovery replay covers the gap).

    Spawn-safety: the buffer travels between processes as its
    :attr:`descriptor`; the receiving process calls :meth:`attach`.
    The descriptor carries the shared lock, which ``multiprocessing``
    only pickles while a process is being spawned — pass descriptors
    through ``Process`` arguments, not through queues after start.
    Attached handles deliberately unregister
    from the ``multiprocessing`` resource tracker so that a worker
    killed with SIGKILL never triggers the tracker's premature-unlink
    warning — the creating process owns the segment's lifetime via
    :meth:`unlink`.
    """

    _HEADER_SLOTS = 3

    def __init__(
        self,
        capacity: int,
        max_readers: int = 1,
        *,
        _shm=None,
        _lock=None,
    ) -> None:
        import multiprocessing
        from multiprocessing import shared_memory

        capacity = int(capacity)
        max_readers = int(max_readers)
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if max_readers < 1:
            raise ValidationError(
                f"max_readers must be >= 1, got {max_readers}"
            )
        header_slots = self._HEADER_SLOTS + max_readers
        size = 8 * (header_slots + capacity)
        if _shm is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            self._shm = _shm
            self._owner = False
        # The publication fence (see class docstring).  Created once by
        # the owner and shared via the descriptor so every process
        # brackets header access with the same lock.  Always from the
        # spawn context: a spawn-context SemLock travels into spawn
        # children by name and into fork children by inheritance,
        # whereas a fork-context one is rejected when pickled for a
        # spawn target.
        self._lock = (
            _lock
            if _lock is not None
            else multiprocessing.get_context("spawn").Lock()
        )
        self.capacity = capacity
        self.max_readers = max_readers
        self._header = np.ndarray(
            (header_slots,), dtype=np.int64, buffer=self._shm.buf
        )
        self._data = np.ndarray(
            (capacity,),
            dtype=np.float64,
            buffer=self._shm.buf,
            offset=8 * header_slots,
        )
        if self._owner:
            self._header[:] = 0
            self._header[1] = capacity
            self._header[2] = max_readers

    # -- lifecycle -----------------------------------------------------

    @property
    def name(self) -> str:
        """Shared-memory segment name (stable process-wide handle)."""
        return self._shm.name

    @property
    def descriptor(self) -> Dict[str, object]:
        """Handle another process can :meth:`attach` to.

        Carries the shared publication lock, so it pickles only while
        a process is being spawned (pass it via ``Process`` args).
        """
        return {
            "name": self._shm.name,
            "capacity": self.capacity,
            "max_readers": self.max_readers,
            "lock": self._lock,
        }

    @classmethod
    def attach(cls, descriptor: Dict[str, object]) -> "SharedRingBuffer":
        """Open an existing buffer from its :attr:`descriptor`."""
        from multiprocessing import resource_tracker, shared_memory

        # CPython <= 3.12 registers the segment with the resource
        # tracker even on attach.  Workers share the creator's tracker
        # process, so that second registration is a duplicate — and
        # un-registering it later would strip the *creator's* entry,
        # breaking the creator's own unlink.  Suppress registration for
        # the attach call instead: the creating process alone owns the
        # segment's lifetime.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=str(descriptor["name"]))
        finally:
            resource_tracker.register = original_register
        return cls(
            int(descriptor["capacity"]),
            int(descriptor["max_readers"]),
            _shm=shm,
            _lock=descriptor["lock"],
        )

    def close(self) -> None:
        """Detach this handle (the segment survives until unlinked)."""
        # Views into shm.buf must be dropped before close() or mmap
        # refuses to release the mapping.
        self._header = None
        self._data = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after :meth:`close`)."""
        self._shm.unlink()

    # -- writer side ---------------------------------------------------

    @property
    def write_seq(self) -> int:
        """Total values ever published (== absolute tick of the newest)."""
        with self._lock:
            return int(self._header[0])

    def reader_seq(self, reader: int) -> int:
        """Total values consumed by reader ``reader``."""
        self._check_reader(reader)
        with self._lock:
            return int(self._header[self._HEADER_SLOTS + reader])

    def set_reader_seq(self, reader: int, seq: int) -> None:
        """Reposition a reader cursor (writer-side recovery only).

        Safe only while no process is concurrently reading through that
        slot — the sharded supervisor uses it between a worker's death
        and its replacement's spawn.
        """
        self._check_reader(reader)
        seq = int(seq)
        with self._lock:
            write = int(self._header[0])
            if seq < 0 or seq > write:
                raise ValidationError(
                    f"reader seq {seq} outside [0, {write}]"
                )
            self._header[self._HEADER_SLOTS + reader] = seq

    def _free_space_locked(self, readers: Sequence[int]) -> int:
        write = int(self._header[0])
        floor = write
        for reader in readers:
            floor = min(
                floor, int(self._header[self._HEADER_SLOTS + reader])
            )
        return self.capacity - (write - floor)

    def free_space(self, readers: Iterable[int] = ()) -> int:
        """Slots the writer may fill without overrunning ``readers``.

        With no readers listed, only the capacity bounds the writer
        (old values are overwritten ring-style).
        """
        readers = [int(r) for r in readers]
        for reader in readers:
            self._check_reader(reader)
        with self._lock:
            return self._free_space_locked(readers)

    def push_many(
        self, values: np.ndarray, readers: Iterable[int] = ()
    ) -> int:
        """Publish as many of ``values`` as fit; returns the count.

        Slots are filled and ``write_seq`` advanced inside one locked
        section — a concurrent reader never observes a
        published-but-unwritten tick, on any memory model.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        readers = [int(r) for r in readers]
        for reader in readers:
            self._check_reader(reader)
        with self._lock:
            room = self._free_space_locked(readers)
            count = min(int(room), values.shape[0])
            if count <= 0:
                return 0
            write = int(self._header[0])
            idx = (write + np.arange(count)) % self.capacity
            self._data[idx] = values[:count]
            self._header[0] = write + count
        return count

    def push(self, value: float, readers: Iterable[int] = ()) -> bool:
        """Publish one value; False when backpressure blocks it."""
        return self.push_many(np.asarray([value]), readers) == 1

    # -- reader side ---------------------------------------------------

    def read_new(
        self, reader: int, limit: Optional[int] = None
    ) -> Tuple[int, np.ndarray]:
        """Consume everything published past this reader's cursor.

        Returns ``(first_tick, values)`` where ``first_tick`` is the
        absolute 1-based tick of ``values[0]`` (undefined when empty).
        Advances the cursor past what was returned.
        """
        self._check_reader(reader)
        slot = self._HEADER_SLOTS + reader
        with self._lock:
            cursor = int(self._header[slot])
            write = int(self._header[0])
            count = write - cursor
            if limit is not None:
                count = min(count, int(limit))
            if count <= 0:
                return cursor + 1, np.empty(0, dtype=np.float64)
            idx = (cursor + np.arange(count)) % self.capacity
            values = self._data[idx].copy()
            self._header[slot] = cursor + count
        return cursor + 1, values

    def _check_reader(self, reader: int) -> None:
        if not 0 <= int(reader) < self.max_readers:
            raise ValidationError(
                f"reader {reader} outside [0, {self.max_readers})"
            )
