"""Fixed-capacity ring buffer over numpy storage.

SPRING itself needs no history, but surrounding tooling does: examples
display the matched subsequence, the monitor CLI prints context windows,
and the SPRING(path) memory accounting wants the recent raw values.  A
ring buffer gives that with a hard memory cap — keeping the whole system
inside the constant-space story.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._serde import decode_floats, encode_floats
from repro.exceptions import ValidationError

__all__ = ["RingBuffer"]


class RingBuffer:
    """Keep the most recent ``capacity`` values of a scalar stream.

    Indexing is by absolute 1-based stream tick, so callers can slice by
    the positions SPRING reports without tracking offsets themselves.
    """

    def __init__(self, capacity: int) -> None:
        if int(capacity) < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.empty(self.capacity, dtype=np.float64)
        self._count = 0  # total values ever pushed == last absolute tick

    def push(self, value: float) -> None:
        """Append one value, evicting the oldest when full."""
        self._data[self._count % self.capacity] = value
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_pushed(self) -> int:
        """Absolute tick of the newest value (0 when empty)."""
        return self._count

    @property
    def oldest_tick(self) -> int:
        """Absolute 1-based tick of the oldest retained value."""
        if self._count == 0:
            raise ValidationError("buffer is empty")
        return max(1, self._count - self.capacity + 1)

    def latest(self, n: int) -> np.ndarray:
        """The ``n`` most recent values, oldest first."""
        n = min(n, len(self))
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return self.window(self._count - n + 1, self._count)

    def window(self, start_tick: int, end_tick: int) -> np.ndarray:
        """Values for absolute ticks ``start_tick..end_tick`` (inclusive).

        Raises when part of the window has been evicted — the caller
        sized the buffer too small for the query it is displaying.
        """
        if start_tick < 1 or end_tick < start_tick:
            raise ValidationError(
                f"invalid window [{start_tick}, {end_tick}]"
            )
        if end_tick > self._count:
            raise ValidationError(
                f"window end {end_tick} is in the future (now={self._count})"
            )
        if start_tick < self.oldest_tick:
            raise ValidationError(
                f"window start {start_tick} already evicted "
                f"(oldest retained: {self.oldest_tick})"
            )
        idx = (np.arange(start_tick - 1, end_tick)) % self.capacity
        return self._data[idx].copy()

    def state_dict(self) -> dict:
        """JSON-safe snapshot: capacity, total pushed, retained values."""
        n = len(self)
        values = self.latest(n) if n else np.empty(0, dtype=np.float64)
        return {
            "capacity": self.capacity,
            "count": self._count,
            "values": encode_floats(values),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RingBuffer":
        """Rebuild a buffer at the snapshot's own capacity.

        Unlike :meth:`load_state_dict` this never rejects on a capacity
        mismatch with some pre-existing buffer — callers restoring a
        checkpoint under a different configured capacity keep the
        snapshot's layout (the pruning engine relies on this so resumed
        parked spans replay exactly as they would have).
        """
        buffer = cls(int(state["capacity"]))
        buffer.load_state_dict(state)
        return buffer

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (capacity must match)."""
        if int(state["capacity"]) != self.capacity:
            raise ValidationError(
                f"buffer capacity mismatch: have {self.capacity}, "
                f"checkpoint has {state['capacity']}"
            )
        values = decode_floats(state["values"])
        # Replay the retained window so the modular layout is rebuilt
        # exactly: rewind the counter, then push the values back.
        self._count = int(state["count"]) - values.shape[0]
        for value in values:
            self.push(float(value))
