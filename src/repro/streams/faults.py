"""Composable, deterministic fault injectors for stream sources.

Real deployments do not look like the paper's clean traces: sensors
drop ticks, transports retry, loggers duplicate, ADCs glitch readings
into garbage, and links stall.  Each wrapper here takes any
:class:`~repro.streams.source.StreamSource` and returns another source
that injects exactly one failure mode, so chaos tests (and the
``resilience`` experiment) can compose the zoo they need::

    faulty = DropSource(DuplicateSource(ArraySource(xs), seed=1), seed=2)

Every injector draws from its own ``numpy`` generator seeded at
``seed``, re-seeded at the start of every iteration — the same wrapper
replayed over a replayable inner source injects the *identical* fault
pattern, which is what makes the chaos suite assertable.

:class:`FlakySource` is the odd one out: it injects *control-flow*
faults (raising :class:`~repro.exceptions.TransientStreamError` from
``__next__``) rather than data faults, and it guarantees the tick that
triggered the failure is not lost — the next ``__next__`` call after an
injected error delivers it.  That is the contract a retrying supervisor
(:class:`~repro.runtime.SupervisedRunner`) needs for exactness.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

import numpy as np

from repro.exceptions import TransientStreamError, ValidationError
from repro.streams.source import StreamSource

__all__ = [
    "FaultInjector",
    "FlakySource",
    "DropSource",
    "DuplicateSource",
    "CorruptSource",
    "StallSource",
]


class FaultInjector(StreamSource):
    """Base class: a seeded, deterministic wrapper around another source."""

    def __init__(
        self,
        source: StreamSource,
        rate: float,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(source, StreamSource):
            raise ValidationError(
                f"fault injectors wrap StreamSource, got {type(source).__name__}"
            )
        if not 0.0 <= float(rate) <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {rate}")
        super().__init__(name if name is not None else source.name)
        self.source = source
        self.rate = float(rate)
        self.seed = int(seed)
        #: Faults injected by the most recent (or current) iteration.
        self.injected = 0

    def _fresh_rng(self) -> np.random.Generator:
        """Per-iteration generator: replays inject identical faults."""
        self.injected = 0
        return np.random.default_rng(self.seed)


class _FlakyIterator:
    """Iterator that raises transient errors *without* losing the tick."""

    def __init__(self, flaky: "FlakySource") -> None:
        self._flaky = flaky
        self._inner = iter(flaky.source)
        self._rng = flaky._fresh_rng()
        self._pending: Optional[object] = None
        self._has_pending = False
        self._consecutive = 0

    def __iter__(self) -> "_FlakyIterator":
        return self

    def __next__(self) -> object:
        if not self._has_pending:
            # May raise StopIteration: exhaustion is not a fault.
            self._pending = next(self._inner)
            self._has_pending = True
        flaky = self._flaky
        limit = flaky.max_consecutive
        if (
            (limit is None or self._consecutive < limit)
            and self._rng.random() < flaky.rate
        ):
            self._consecutive += 1
            flaky.injected += 1
            raise flaky.error(
                f"injected transient failure on stream {flaky.name!r} "
                f"(attempt {self._consecutive})"
            )
        self._consecutive = 0
        value, self._pending, self._has_pending = self._pending, None, False
        return value


class FlakySource(FaultInjector):
    """Raise seeded transient errors from ``__next__``; never lose a tick.

    Parameters
    ----------
    rate:
        Per-attempt probability of raising instead of delivering.
    max_consecutive:
        Optional cap on back-to-back failures for one tick; ``None``
        lets streaks run as long as the dice decide (a retry policy with
        fewer attempts than a streak will then see the pull as fatal —
        exactly the scenario quarantine exists for).
    error:
        Exception type to raise (default
        :class:`~repro.exceptions.TransientStreamError`).
    """

    def __init__(
        self,
        source: StreamSource,
        rate: float = 0.1,
        seed: int = 0,
        max_consecutive: Optional[int] = 2,
        error: Callable[[str], BaseException] = TransientStreamError,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(source, rate, seed, name)
        if max_consecutive is not None and int(max_consecutive) < 1:
            raise ValidationError(
                f"max_consecutive must be >= 1 or None, got {max_consecutive}"
            )
        self.max_consecutive = (
            None if max_consecutive is None else int(max_consecutive)
        )
        self.error = error

    def __iter__(self) -> Iterator[object]:
        return _FlakyIterator(self)


class DropSource(FaultInjector):
    """Silently drop ticks with probability ``rate`` (lossy sensor link)."""

    def __iter__(self) -> Iterator[object]:
        rng = self._fresh_rng()
        for value in self.source:
            if rng.random() < self.rate:
                self.injected += 1
                continue
            yield value


class DuplicateSource(FaultInjector):
    """Deliver ticks twice with probability ``rate`` (at-least-once replay)."""

    def __iter__(self) -> Iterator[object]:
        rng = self._fresh_rng()
        for value in self.source:
            yield value
            if rng.random() < self.rate:
                self.injected += 1
                yield value


class CorruptSource(FaultInjector):
    """Replace readings with NaN with probability ``rate`` (glitched ADC).

    NaN is the missing-value marker the matchers' ``missing`` policies
    already understand, so corruption degrades into the paper's gappy-
    sensor setting instead of poisoning the warping matrix.
    """

    def __iter__(self) -> Iterator[object]:
        rng = self._fresh_rng()
        for value in self.source:
            if rng.random() < self.rate:
                self.injected += 1
                if isinstance(value, np.ndarray):
                    yield np.full_like(
                        np.asarray(value, dtype=np.float64), np.nan
                    )
                else:
                    yield float("nan")
            else:
                yield value


class StallSource(FaultInjector):
    """Stall before delivering with probability ``rate`` (congested link).

    Data is unchanged — only latency is injected.  ``sleep`` is
    injectable so tests assert the stall schedule without waiting it out.
    """

    def __init__(
        self,
        source: StreamSource,
        rate: float = 0.05,
        seed: int = 0,
        delay: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(source, rate, seed, name)
        if float(delay) < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        self.delay = float(delay)
        self.sleep = sleep

    def __iter__(self) -> Iterator[object]:
        rng = self._fresh_rng()
        for value in self.source:
            if rng.random() < self.rate:
                self.injected += 1
                self.sleep(self.delay)
            yield value
