"""Timestamped replay: simulate wall-clock arrival of recorded streams.

Demos and load tests want recorded data to *arrive* like live data:
per-source sample rates, jitter, reordering across sources, and a clock
that can run faster than real time.  This module provides

* :class:`TimedSample` — a (timestamp, source, value) event;
* :class:`ReplaySchedule` — merge several recordings into one
  timestamp-ordered event sequence, each with its own rate and jitter;
* :class:`SimulationClock` — consume a schedule either as fast as
  possible (tests) or paced against real time scaled by a factor
  (demos).

The monitoring side stays push-based: feed each event's value into a
:class:`~repro.core.monitor.StreamMonitor` as it "arrives".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import check_nonnegative, check_positive
from repro.datasets.noise import SeedLike, as_rng
from repro.exceptions import ValidationError

__all__ = ["TimedSample", "ReplaySchedule", "SimulationClock"]


@dataclass(frozen=True)
class TimedSample:
    """One replayed value: arrival time (seconds), source name, value."""

    timestamp: float
    source: str
    value: float

    def __lt__(self, other: "TimedSample") -> bool:
        return self.timestamp < other.timestamp


class ReplaySchedule:
    """Merge recordings into one timestamp-ordered arrival sequence.

    Each source has a nominal sample interval; optional jitter perturbs
    individual arrival times (bounded below half an interval so order
    *within* a source is preserved — cross-source order interleaves
    freely, as in real collection).
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._sources: List[Tuple[str, np.ndarray, float, float, float]] = []
        self._rng = as_rng(seed)

    def add_source(
        self,
        name: str,
        values: object,
        interval: float = 1.0,
        start: float = 0.0,
        jitter: float = 0.0,
    ) -> "ReplaySchedule":
        """Register one recording.

        Parameters
        ----------
        interval:
            Seconds between consecutive samples of this source.
        start:
            Arrival time of the first sample.
        jitter:
            Uniform arrival perturbation, must be < ``interval / 2``.
        """
        array = np.asarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            raise ValidationError(f"source {name!r} has no values")
        check_positive(interval, "interval")
        check_nonnegative(start, "start")
        check_nonnegative(jitter, "jitter")
        if jitter >= interval / 2:
            raise ValidationError(
                f"jitter {jitter} must be < interval/2 = {interval / 2} "
                "to preserve per-source ordering"
            )
        if any(existing == name for existing, *_ in self._sources):
            raise ValidationError(f"source {name!r} already registered")
        self._sources.append((name, array, interval, start, jitter))
        return self

    def events(self) -> List[TimedSample]:
        """All arrivals, sorted by timestamp."""
        if not self._sources:
            raise ValidationError("no sources registered")
        out: List[TimedSample] = []
        for name, array, interval, start, jitter in self._sources:
            base = start + np.arange(array.shape[0]) * interval
            if jitter:
                base = base + self._rng.uniform(
                    -jitter, jitter, size=array.shape[0]
                )
            for timestamp, value in zip(base, array):
                out.append(TimedSample(float(timestamp), name, float(value)))
        out.sort(key=lambda sample: sample.timestamp)
        return out

    @property
    def duration(self) -> float:
        """Time of the last arrival."""
        events = self.events()
        return events[-1].timestamp if events else 0.0


class SimulationClock:
    """Drive a schedule: as-fast-as-possible or paced real time.

    Parameters
    ----------
    speedup:
        Real-time pacing factor; ``None`` (default) disables pacing
        entirely (tests, batch evaluation).  ``speedup=60`` replays an
        hour of recording in a minute.
    """

    def __init__(self, speedup: Optional[float] = None) -> None:
        if speedup is not None:
            check_positive(speedup, "speedup")
        self.speedup = speedup

    def run(
        self, schedule: ReplaySchedule
    ) -> Iterator[TimedSample]:
        """Yield events in arrival order, sleeping when paced."""
        start_wall = time.perf_counter()
        for event in schedule.events():
            if self.speedup is not None:
                due = start_wall + event.timestamp / self.speedup
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            yield event

    def drive(self, schedule: ReplaySchedule, monitor) -> int:
        """Feed a :class:`~repro.core.monitor.StreamMonitor`.

        Unregistered sources are added on first arrival.  Returns the
        number of match events the monitor produced.
        """
        produced = 0
        known = set(monitor.streams)
        for event in self.run(schedule):
            if event.source not in known:
                monitor.add_stream(event.source)
                known.add(event.source)
            produced += len(monitor.push(event.source, event.value))
        produced += len(monitor.flush())
        return produced
