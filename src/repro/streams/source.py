"""Stream sources: uniform iteration over arrays, generators, and files.

A *source* is anything the monitoring loop can pull ticks from.  The
classes here adapt the common cases to one small protocol — ``__iter__``
over floats (or k-vectors) plus a ``name`` — so examples, the CLI, and
the evaluation harness share plumbing.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import (
    MalformedRecordError,
    StreamExhaustedError,
    ValidationError,
)

__all__ = [
    "StreamSource",
    "ArraySource",
    "GeneratorSource",
    "CsvSource",
    "interleave",
]


class StreamSource:
    """Base class: a named, iterable stream of scalar or vector ticks."""

    def __init__(self, name: str = "stream") -> None:
        self.name = str(name)

    def __iter__(self) -> Iterator[object]:
        raise NotImplementedError

    def take(self, n: int) -> List[object]:
        """Pull up to ``n`` ticks (fewer if the source ends first)."""
        out = []
        for value in self:
            out.append(value)
            if len(out) >= n:
                break
        return out


class ArraySource(StreamSource):
    """Replay a stored array as a stream.

    1-D arrays yield floats; 2-D ``(n, k)`` arrays yield length-k vectors.
    """

    def __init__(self, values: object, name: str = "array") -> None:
        super().__init__(name)
        array = np.asarray(values, dtype=np.float64)
        if array.ndim not in (1, 2):
            raise ValidationError(
                f"ArraySource needs a 1-D or 2-D array, got shape {array.shape}"
            )
        self._values = array

    def __len__(self) -> int:
        return self._values.shape[0]

    @property
    def values(self) -> np.ndarray:
        """Underlying array (not a copy)."""
        return self._values

    def __iter__(self) -> Iterator[object]:
        if self._values.ndim == 1:
            for value in self._values:
                yield float(value)
        else:
            for row in self._values:
                yield row


class GeneratorSource(StreamSource):
    """Wrap a (possibly infinite) generator of ticks.

    The generator is consumed once; iterating a second time raises
    :class:`~repro.exceptions.StreamExhaustedError` to catch the classic
    silently-empty-second-pass bug.  :meth:`take` pulls exactly ``n``
    ticks and leaves the remainder consumable, so peeking at a prefix
    does not destroy the stream.
    """

    def __init__(self, generator: Iterable[object], name: str = "generator") -> None:
        super().__init__(name)
        self._iterator: Optional[Iterator[object]] = iter(generator)

    def __iter__(self) -> Iterator[object]:
        if self._iterator is None:
            raise StreamExhaustedError(
                f"stream {self.name!r} was already consumed"
            )
        iterator, self._iterator = self._iterator, None
        return iterator

    def take(self, n: int) -> List[object]:
        """Pull up to ``n`` ticks without consuming the rest.

        Unlike the base implementation (which routes through
        ``__iter__`` and would hand the whole one-shot iterator away),
        this pulls item-by-item: after ``take(n)`` the remaining ticks
        are still iterable.  If the generator ends inside the ``take``,
        the source is exhausted exactly as if it had been iterated out.
        """
        if self._iterator is None:
            raise StreamExhaustedError(
                f"stream {self.name!r} was already consumed"
            )
        out: List[object] = []
        for _ in range(max(0, int(n))):
            try:
                out.append(next(self._iterator))
            except StopIteration:
                self._iterator = None
                break
        return out


class CsvSource(StreamSource):
    """Stream one column (or several, as vectors) out of a CSV file.

    Empty cells become NaN — the missing-value marker SPRING's
    ``missing="skip"`` policy understands — mirroring the Temperature
    dataset's gappy sensor readings.  *Malformed* cells (non-empty but
    unparseable, or a missing column in a short row) also become NaN by
    default, but are counted in :attr:`malformed_count` so data-quality
    problems stay observable; with ``strict=True`` they raise
    :class:`~repro.exceptions.MalformedRecordError` instead.
    """

    def __init__(
        self,
        path: Union[str, Path],
        columns: Union[int, Sequence[int]] = 0,
        skip_header: bool = True,
        delimiter: str = ",",
        name: Optional[str] = None,
        strict: bool = False,
    ) -> None:
        self.path = Path(path)
        super().__init__(name if name is not None else self.path.stem)
        if isinstance(columns, int):
            self._columns: List[int] = [columns]
            self._scalar = True
        else:
            self._columns = list(columns)
            self._scalar = False
            if not self._columns:
                raise ValidationError("columns must not be empty")
        self.skip_header = bool(skip_header)
        self.delimiter = delimiter
        self.strict = bool(strict)
        #: Malformed cells seen by the most recent (or current) iteration.
        self.malformed_count = 0

    def __iter__(self) -> Iterator[object]:
        self.malformed_count = 0  # per-pass counter; the file is replayable
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            if self.skip_header:
                next(reader, None)
            for line, row in enumerate(reader, 2 if self.skip_header else 1):
                values = [self._parse(row, c, line) for c in self._columns]
                if self._scalar:
                    yield values[0]
                else:
                    yield np.asarray(values, dtype=np.float64)

    def _parse(self, row: List[str], column: int, line: int) -> float:
        try:
            cell = row[column].strip()
        except IndexError:
            if not row:
                return float("nan")  # blank line: a missing record
            return self._malformed(
                f"{self.path}:{line}: row has no column {column}"
            )
        if not cell:
            return float("nan")  # genuinely missing reading, not malformed
        try:
            return float(cell)
        except ValueError:
            return self._malformed(
                f"{self.path}:{line}: unparseable cell {cell!r}"
            )

    def _malformed(self, detail: str) -> float:
        self.malformed_count += 1
        if self.strict:
            raise MalformedRecordError(detail)
        return float("nan")


def interleave(sources: Sequence[StreamSource]) -> Iterator[tuple]:
    """Round-robin ticks from several sources as ``(name, value)`` pairs.

    Stops when the shortest source ends — the synchronous multi-stream
    setting of Section 5.3.  Rounds are all-or-nothing: a whole round is
    pulled before any of its ticks is yielded, so when one source runs
    out mid-round the earlier sources do not leak an extra tick.
    """
    iterators = [(source.name, iter(source)) for source in sources]
    while True:
        round_ticks = []
        for name, iterator in iterators:
            try:
                round_ticks.append((name, next(iterator)))
            except StopIteration:
                return
        for pair in round_ticks:
            yield pair
