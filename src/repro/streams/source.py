"""Stream sources: uniform iteration over arrays, generators, and files.

A *source* is anything the monitoring loop can pull ticks from.  The
classes here adapt the common cases to one small protocol — ``__iter__``
over floats (or k-vectors) plus a ``name`` — so examples, the CLI, and
the evaluation harness share plumbing.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import StreamExhaustedError, ValidationError

__all__ = [
    "StreamSource",
    "ArraySource",
    "GeneratorSource",
    "CsvSource",
    "interleave",
]


class StreamSource:
    """Base class: a named, iterable stream of scalar or vector ticks."""

    def __init__(self, name: str = "stream") -> None:
        self.name = str(name)

    def __iter__(self) -> Iterator[object]:
        raise NotImplementedError

    def take(self, n: int) -> List[object]:
        """Pull up to ``n`` ticks (fewer if the source ends first)."""
        out = []
        for value in self:
            out.append(value)
            if len(out) >= n:
                break
        return out


class ArraySource(StreamSource):
    """Replay a stored array as a stream.

    1-D arrays yield floats; 2-D ``(n, k)`` arrays yield length-k vectors.
    """

    def __init__(self, values: object, name: str = "array") -> None:
        super().__init__(name)
        array = np.asarray(values, dtype=np.float64)
        if array.ndim not in (1, 2):
            raise ValidationError(
                f"ArraySource needs a 1-D or 2-D array, got shape {array.shape}"
            )
        self._values = array

    def __len__(self) -> int:
        return self._values.shape[0]

    @property
    def values(self) -> np.ndarray:
        """Underlying array (not a copy)."""
        return self._values

    def __iter__(self) -> Iterator[object]:
        if self._values.ndim == 1:
            for value in self._values:
                yield float(value)
        else:
            for row in self._values:
                yield row


class GeneratorSource(StreamSource):
    """Wrap a (possibly infinite) generator of ticks.

    The generator is consumed once; iterating a second time raises
    :class:`~repro.exceptions.StreamExhaustedError` to catch the classic
    silently-empty-second-pass bug.
    """

    def __init__(self, generator: Iterable[object], name: str = "generator") -> None:
        super().__init__(name)
        self._iterator: Optional[Iterator[object]] = iter(generator)

    def __iter__(self) -> Iterator[object]:
        if self._iterator is None:
            raise StreamExhaustedError(
                f"stream {self.name!r} was already consumed"
            )
        iterator, self._iterator = self._iterator, None
        return iterator


class CsvSource(StreamSource):
    """Stream one column (or several, as vectors) out of a CSV file.

    Empty cells and unparseable fields become NaN — the missing-value
    marker SPRING's ``missing="skip"`` policy understands — mirroring the
    Temperature dataset's gappy sensor readings.
    """

    def __init__(
        self,
        path: Union[str, Path],
        columns: Union[int, Sequence[int]] = 0,
        skip_header: bool = True,
        delimiter: str = ",",
        name: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        super().__init__(name if name is not None else self.path.stem)
        if isinstance(columns, int):
            self._columns: List[int] = [columns]
            self._scalar = True
        else:
            self._columns = list(columns)
            self._scalar = False
            if not self._columns:
                raise ValidationError("columns must not be empty")
        self.skip_header = bool(skip_header)
        self.delimiter = delimiter

    def __iter__(self) -> Iterator[object]:
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            if self.skip_header:
                next(reader, None)
            for row in reader:
                values = [self._parse(row, c) for c in self._columns]
                if self._scalar:
                    yield values[0]
                else:
                    yield np.asarray(values, dtype=np.float64)

    @staticmethod
    def _parse(row: List[str], column: int) -> float:
        try:
            cell = row[column].strip()
        except IndexError:
            return float("nan")
        if not cell:
            return float("nan")
        try:
            return float(cell)
        except ValueError:
            return float("nan")


def interleave(sources: Sequence[StreamSource]) -> Iterator[tuple]:
    """Round-robin ticks from several sources as ``(name, value)`` pairs.

    Stops when the shortest source ends — the synchronous multi-stream
    setting of Section 5.3.
    """
    iterators = [(source.name, iter(source)) for source in sources]
    while True:
        for name, iterator in iterators:
            try:
                yield name, next(iterator)
            except StopIteration:
                return
