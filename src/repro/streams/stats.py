"""Running statistics for streaming normalisation and summaries.

:class:`RunningStats` is Welford's numerically-stable single-pass
mean/variance; :class:`EwmStats` is its exponentially-weighted cousin for
drifting streams.  Both are O(1) per value and O(1) space — the same
resource envelope SPRING lives in.
"""

from __future__ import annotations

import math
from typing import Optional

from repro._serde import decode_float, encode_float
from repro._validation import check_positive
from repro.exceptions import NotFittedError, ValidationError

__all__ = ["RunningStats", "EwmStats"]


class RunningStats:
    """Welford's online mean / variance / min / max."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Fold one value into the statistics."""
        value = float(value)
        if math.isnan(value):
            return  # missing values do not contribute
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of (non-missing) values folded in."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean; 0 before any value (matching z-norm conventions)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the values seen so far."""
        if self._count == 0:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest value seen."""
        if self._count == 0:
            raise NotFittedError("no values seen yet")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest value seen."""
        if self._count == 0:
            raise NotFittedError("no values seen yet")
        return self._max

    def state_dict(self) -> dict:
        """JSON-safe snapshot (non-finite min/max encoded as strings)."""
        return {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "min": encode_float(self._min),
            "max": encode_float(self._max),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._min = decode_float(state["min"])
        self._max = decode_float(state["max"])


class EwmStats:
    """Exponentially-weighted mean/variance with a half-life in ticks.

    Weight of a sample ``h`` ticks old is ``0.5 ** (h / halflife)``; the
    decay factor per tick is ``alpha = 0.5 ** (1 / halflife)``.
    """

    def __init__(self, halflife: float) -> None:
        check_positive(halflife, "halflife")
        self.halflife = float(halflife)
        self._decay = 0.5 ** (1.0 / self.halflife)
        self._weight = 0.0
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    def push(self, value: float) -> None:
        """Fold one value in, decaying all previous weight."""
        value = float(value)
        if math.isnan(value):
            return
        self._count += 1
        if self._weight == 0.0:
            self._weight = 1.0
            self._mean = value
            self._var = 0.0
            return
        decayed = self._weight * self._decay
        total = decayed + 1.0
        delta = value - self._mean
        frac = 1.0 / total
        self._mean += delta * frac
        # Weighted Welford update: old variance decays, new sample adds
        # its (pre/post)-mean deviation product.
        self._var = (decayed * (self._var + frac * delta * delta)) / total
        self._weight = total

    @property
    def count(self) -> int:
        """Number of (non-missing) values folded in."""
        return self._count

    @property
    def mean(self) -> float:
        """Exponentially-weighted mean."""
        return self._mean

    @property
    def variance(self) -> float:
        """Exponentially-weighted variance."""
        return max(self._var, 0.0)

    @property
    def std(self) -> float:
        """Exponentially-weighted standard deviation."""
        return math.sqrt(self.variance)

    def state_dict(self) -> dict:
        """JSON-safe snapshot (``halflife`` is constructor config, not here)."""
        return {
            "weight": self._weight,
            "mean": self._mean,
            "var": self._var,
            "count": self._count,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self._weight = float(state["weight"])
        self._mean = float(state["mean"])
        self._var = float(state["var"])
        self._count = int(state["count"])
