"""Stream transforms: noise, dropout, delay, resampling.

These model the imperfections the paper's experiments lean on — sensor
noise (MaskedChirp), missing readings (Temperature), and rate differences
("the sampling rates of streams are frequently different") — as
composable generators over any iterable of floats.

All transforms take an explicit ``rng`` (:class:`numpy.random.Generator`)
so experiments stay reproducible.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro._validation import check_nonnegative, check_probability, check_positive
from repro.exceptions import ValidationError

__all__ = ["add_noise", "dropout", "time_scale", "quantize", "clip_range"]


def add_noise(
    values: Iterable[float],
    sigma: float,
    rng: np.random.Generator,
) -> Iterator[float]:
    """Add i.i.d. Gaussian noise with standard deviation ``sigma``."""
    check_nonnegative(sigma, "sigma")
    for value in values:
        yield float(value) + float(rng.normal(0.0, sigma))


def dropout(
    values: Iterable[float],
    probability: float,
    rng: np.random.Generator,
) -> Iterator[float]:
    """Replace each value with NaN independently with given probability.

    This reproduces the Temperature dataset's missing readings; SPRING's
    ``missing="skip"`` policy consumes the NaNs without state changes.
    """
    check_probability(probability, "probability")
    for value in values:
        if rng.random() < probability:
            yield float("nan")
        else:
            yield float(value)


def time_scale(values: Iterable[float], factor: float) -> Iterator[float]:
    """Stretch (> 1) or shrink (< 1) the time axis by linear interpolation.

    This is the operation DTW is built to absorb: a pattern emitted
    through ``time_scale`` should still match its original under SPRING
    (and fail under a rigid Euclidean matcher).
    """
    check_positive(factor, "factor")
    array = np.asarray(list(values), dtype=np.float64)
    n = array.shape[0]
    if n == 0:
        return
    new_n = max(1, int(round(n * factor)))
    old_t = np.arange(n, dtype=np.float64)
    new_t = np.linspace(0.0, n - 1, new_n)
    for value in np.interp(new_t, old_t, array):
        yield float(value)


def quantize(values: Iterable[float], step: float) -> Iterator[float]:
    """Round values to multiples of ``step`` (ADC-style quantisation)."""
    check_positive(step, "step")
    for value in values:
        yield float(np.round(value / step) * step)


def clip_range(
    values: Iterable[float], low: float, high: float
) -> Iterator[float]:
    """Clip values into [low, high] (sensor saturation)."""
    if not low < high:
        raise ValidationError(f"need low < high, got [{low}, {high}]")
    for value in values:
        yield float(min(max(value, low), high))
