"""Sliding-window aggregates over streams.

Monitoring pipelines commonly pre-aggregate raw streams (per-second
means, max-in-window spikes) before pattern matching, and dashboards
want rolling summaries alongside SPRING's matches.  These aggregators
are O(1) amortised per tick (monotonic-deque minima/maxima, rolling
sums) and fixed-memory, keeping the whole pipeline inside the paper's
resource envelope.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError

__all__ = ["RollingMean", "RollingExtrema", "Downsampler"]


class RollingMean:
    """Mean (and variance) over the last ``window`` values.

    NaN values are treated as missing: they occupy a slot in the window
    but contribute nothing, so gappy sensors degrade gracefully.
    """

    def __init__(self, window: int) -> None:
        if int(window) < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._values: Deque[float] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0
        self._present = 0

    def push(self, value: float) -> None:
        """Add one value, evicting beyond the window."""
        value = float(value)
        self._values.append(value)
        if not np.isnan(value):
            self._sum += value
            self._sum_sq += value * value
            self._present += 1
        if len(self._values) > self.window:
            old = self._values.popleft()
            if not np.isnan(old):
                self._sum -= old
                self._sum_sq -= old * old
                self._present -= 1

    @property
    def count(self) -> int:
        """Non-missing values currently in the window."""
        return self._present

    @property
    def mean(self) -> float:
        """Mean of the non-missing window values."""
        if self._present == 0:
            raise NotFittedError("window holds no values")
        return self._sum / self._present

    @property
    def variance(self) -> float:
        """Population variance of the non-missing window values."""
        if self._present == 0:
            raise NotFittedError("window holds no values")
        mean = self.mean
        return max(self._sum_sq / self._present - mean * mean, 0.0)


class RollingExtrema:
    """Min and max over the last ``window`` values in O(1) amortised.

    Two monotonic deques hold (tick, value) pairs; the front of each is
    the current extremum.  NaNs are skipped (time still advances).
    """

    def __init__(self, window: int) -> None:
        if int(window) < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._tick = 0
        self._minq: Deque[Tuple[int, float]] = deque()
        self._maxq: Deque[Tuple[int, float]] = deque()

    def push(self, value: float) -> None:
        """Add one value."""
        self._tick += 1
        value = float(value)
        if not np.isnan(value):
            while self._minq and self._minq[-1][1] >= value:
                self._minq.pop()
            self._minq.append((self._tick, value))
            while self._maxq and self._maxq[-1][1] <= value:
                self._maxq.pop()
            self._maxq.append((self._tick, value))
        horizon = self._tick - self.window
        while self._minq and self._minq[0][0] <= horizon:
            self._minq.popleft()
        while self._maxq and self._maxq[0][0] <= horizon:
            self._maxq.popleft()

    @property
    def minimum(self) -> float:
        """Smallest non-missing value in the window."""
        if not self._minq:
            raise NotFittedError("window holds no values")
        return self._minq[0][1]

    @property
    def maximum(self) -> float:
        """Largest non-missing value in the window."""
        if not self._maxq:
            raise NotFittedError("window holds no values")
        return self._maxq[0][1]

    @property
    def range(self) -> float:
        """max - min over the window."""
        return self.maximum - self.minimum


class Downsampler:
    """Block-average downsampling: r raw ticks -> 1 coarse tick.

    The coarse-stage reducer the cascade matcher uses, exposed for
    standalone pipelines.  A block containing any NaN yields NaN (the
    conservative choice for pattern matching — a gap should look like a
    gap, not like a diluted average).
    """

    def __init__(self, factor: int) -> None:
        if int(factor) < 1:
            raise ValidationError(f"factor must be >= 1, got {factor}")
        self.factor = int(factor)
        self._block: list = []

    def push(self, value: float) -> Optional[float]:
        """Add one raw value; returns a coarse value when a block fills."""
        self._block.append(float(value))
        if len(self._block) < self.factor:
            return None
        block = np.asarray(self._block, dtype=np.float64)
        self._block.clear()
        if np.isnan(block).any():
            return float("nan")
        return float(block.mean())

    @property
    def pending(self) -> int:
        """Raw values waiting for the current block to fill."""
        return len(self._block)
