"""Kernel backend suite: registry semantics and direct kernel parity."""
