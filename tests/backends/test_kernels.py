"""Direct kernel parity: every available backend vs the NumPy reference.

Each backend's four kernel entry points are checked bit-for-bit against
the reference implementations on randomized inputs, including ``inf``
resets and NaN placement (payload bits are canonicalised before byte
comparison — the one degree of freedom the exactness contract leaves
open; see ``repro.core.backends.base``).

The suite parametrises over :func:`available_backends`, so it runs the
numpy backend everywhere, the cext backend wherever a C compiler
exists, and the numba backend only where the optional package is
installed — nothing here is environment-specific.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import FusedSpring, Spring, StreamMonitor
from repro.core.backends import available_backends, resolve_backend
from repro.core.checkpoint import dump_monitor_json, save_monitor
from repro.core.state import SpringState, update_column, update_columns
from repro.dtw.lower_bounds import lb_corridor

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return resolve_backend(request.param)


def canon(values: np.ndarray) -> np.ndarray:
    """Copy with every NaN rewritten to the canonical quiet NaN."""
    out = np.array(values, dtype=np.float64, copy=True)
    out[np.isnan(out)] = np.nan
    return out


def _random_column_state(rng, q, m):
    """A plausible mid-stream (d, s, cost, ticks) tuple with infs."""
    d = rng.uniform(0.0, 8.0, size=(q, m + 1))
    d[:, 0] = 0.0
    # Sprinkle the inf reset representation Figure 4 writes after emits.
    d[rng.random(size=d.shape) < 0.2] = np.inf
    s = rng.integers(1, 50, size=(q, m + 1)).astype(np.int64)
    cost = rng.uniform(0.0, 4.0, size=(q, m))
    ticks = rng.integers(1, 50, size=q).astype(np.int64)
    return d, s, cost, ticks


# ----------------------------------------------------------------------
# update_columns / update_column
# ----------------------------------------------------------------------


def test_update_columns_bitexact(backend, rng):
    for _ in range(25):
        q = int(rng.integers(1, 9))
        m = int(rng.integers(1, 17))
        d, s, cost, ticks = _random_column_state(rng, q, m)
        want_d, want_s = update_columns(d, s, cost, ticks)
        got_d, got_s = backend.update_columns(d, s, cost, ticks)
        assert got_d.tobytes() == want_d.tobytes()
        assert got_s.tobytes() == want_s.tobytes()


def test_update_columns_nan_placement(backend, rng):
    """NaN inputs: identical placement, payloads canonicalised."""
    q, m = 4, 6
    d, s, cost, ticks = _random_column_state(rng, q, m)
    d[rng.random(size=d.shape) < 0.25] = np.nan
    with np.errstate(invalid="ignore"):
        want_d, want_s = update_columns(d, s, cost, ticks)
        got_d, got_s = backend.update_columns(d, s, cost, ticks)
    assert canon(got_d).tobytes() == canon(want_d).tobytes()
    assert got_s.tobytes() == want_s.tobytes()


def test_update_columns_leaves_inputs_untouched(backend, rng):
    d, s, cost, ticks = _random_column_state(rng, 3, 5)
    before = (d.copy(), s.copy())
    backend.update_columns(d, s, cost, ticks)
    assert np.array_equal(d, before[0])
    assert np.array_equal(s, before[1])


def test_update_column_bitexact_over_a_stream(backend, rng):
    m = 7
    got = SpringState.initial(m)
    want = SpringState.initial(m)
    for tick in range(1, 40):
        cost = rng.uniform(0.0, 4.0, size=m)
        update_column(want, cost, tick)
        backend.update_column(got, cost, tick)
        assert got.d.tobytes() == want.d.tobytes()
        assert got.s.tobytes() == want.s.tobytes()


# ----------------------------------------------------------------------
# lb_corridor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["squared", "absolute"])
def test_lb_corridor_bitexact(backend, rng, kind):
    lo = rng.uniform(-5.0, 2.0, size=16)
    hi = lo + rng.uniform(0.0, 6.0, size=16)
    for x in (-10.0, 0.0, 1.5, 7.0, float(lo[0]), float(hi[3])):
        want = lb_corridor(x, lo, hi, kind)
        got = backend.lb_corridor(x, lo, hi, kind)
        assert np.asarray(got).tobytes() == np.asarray(want).tobytes()


# ----------------------------------------------------------------------
# group_corridor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["squared", "absolute"])
def test_group_corridor_bitexact(backend, rng, kind):
    """The group certification verdict matches the reference exactly.

    The verdict is a strict ``>`` on the very float the reference bound
    computes, so ``eps`` values are planted directly *on* several group
    bounds to pin the boundary: a backend that certifies with ``>=``, or
    whose bound differs by one ulp, flips a verdict byte here.
    """
    lo = rng.uniform(-5.0, 2.0, size=16)
    hi = lo + rng.uniform(0.0, 6.0, size=16)
    for x in (-10.0, 0.0, 1.5, 7.0, float(lo[0]), float(hi[3])):
        bounds = lb_corridor(x, lo, hi, kind)
        eps = rng.uniform(0.0, 8.0, size=16)
        eps[::3] = bounds[::3]  # exact boundary: must NOT certify
        want = bounds > eps
        got = backend.group_corridor(x, lo, hi, eps, kind)
        assert np.asarray(got).dtype == np.bool_
        assert np.asarray(got).tobytes() == np.asarray(want).tobytes()


def test_group_corridor_unknown_kind_rejected(backend):
    """Unprunable distances reject identically on every backend."""
    from repro.exceptions import ValidationError

    lo = np.array([0.0, 3.0])
    hi = np.array([1.0, 4.0])
    eps = np.array([0.5, 2.0])
    with pytest.raises(ValidationError):
        backend.group_corridor(2.0, lo, hi, eps, "custom")


# ----------------------------------------------------------------------
# bank_kernel minting
# ----------------------------------------------------------------------


def _engine(rng, backend_name="numpy"):
    springs = [
        Spring(np.cumsum(rng.normal(size=4 + i)), epsilon=2.0)
        for i in range(3)
    ]
    return FusedSpring.from_springs(springs, backend=backend_name)


def test_bank_kernel_minting(backend, rng):
    engine = _engine(rng)
    kernel = backend.bank_kernel(engine)
    if backend.compiled:
        assert kernel is not None
        assert kernel.emit_capacity >= 4 * engine.q
    else:
        # The numpy backend IS the vectorised fallback path.
        assert kernel is None


def test_bank_kernel_declines_unknown_distance(backend, rng):
    engine = _engine(rng)
    engine._prune_kind = "custom"  # no compiled specialisation
    assert backend.bank_kernel(engine) is None


def test_engine_reports_compiled_step(backend, rng):
    engine = _engine(rng, backend_name=backend)
    assert engine.backend_name == backend.name
    assert engine.compiled_step == backend.compiled


# ----------------------------------------------------------------------
# warm-up and serialisation hygiene
# ----------------------------------------------------------------------


def test_warmup_is_idempotent(backend):
    first = backend.warmup()
    assert first >= 0.0
    assert backend.warmup() == backend.warmup_seconds


def test_backend_never_serialised(backend, rng):
    spring = Spring(np.cumsum(rng.normal(size=5)), epsilon=2.0)
    spring.set_backend(backend)
    for value in np.cumsum(rng.normal(size=12)):
        spring.step(float(value))
    assert "backend" not in json.dumps(spring.state_dict())

    monitor = StreamMonitor(backend=backend)
    monitor.add_stream("s0")
    monitor.add_query("q0", np.cumsum(rng.normal(size=5)), epsilon=2.0)
    monitor.add_query("q1", np.cumsum(rng.normal(size=7)), epsilon=2.0)
    for value in np.cumsum(rng.normal(size=12)):
        monitor.push("s0", float(value))
    assert "backend" not in json.dumps(save_monitor(monitor))
    assert "backend" not in dump_monitor_json(monitor)
