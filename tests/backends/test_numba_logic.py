"""Numba kernel *logic* tests — no numba required.

The numba backend's kernel bodies are plain module functions that only
get wrapped with ``@njit`` when the package is present
(:data:`repro.core.backends.numba_backend.PLAIN` keeps the undecorated
originals).  These tests drive those plain-Python bodies against the
vectorised NumPy reference and against a live ``FusedSpring``, so the
algorithm is proven everywhere and the numba CI leg only has to prove
the JIT wrapper compiles to the same answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FusedSpring, Spring
from repro.core.backends.numba_backend import _KIND_CODES, PLAIN
from repro.core.state import update_columns
from repro.dtw.lower_bounds import lb_corridor


def _bank_args(engine):
    """The positional tail every fused-bank kernel call shares."""
    bank = engine.bank
    return (
        _KIND_CODES[engine._prune_kind],
        np.ascontiguousarray(bank.padded[:, :, 0]),
        bank.lengths,
        bank.epsilons,
        engine._d,
        engine._s,
        engine._ticks,
        engine._dmin,
        engine._ts,
        engine._te,
        engine._best_d,
        engine._best_s,
        engine._best_e,
    )


def _emit_buffers(cap=256):
    return (
        np.empty(cap, dtype=np.int64),
        np.empty(cap, dtype=np.float64),
        np.empty(cap, dtype=np.int64),
        np.empty(cap, dtype=np.int64),
        np.empty(cap, dtype=np.int64),
        cap,
    )


def _emitted(emit, n):
    eq, ed, ets, ete, et = emit[:5]
    return [
        (int(eq[i]), int(ets[i]), int(ete[i]), float(ed[i]), int(et[i]))
        for i in range(n)
    ]


def _reference_engine(rng, q=4):
    springs = [
        Spring(np.cumsum(rng.normal(size=3 + 2 * (i % 3))), epsilon=2.5)
        for i in range(q)
    ]
    return FusedSpring.from_springs(springs, backend="numpy")


def _shadow_of(engine):
    """A second engine with cloned master arrays, driven by PLAIN kernels."""
    shadow = {
        "args": None,
        "d": engine._d.copy(),
        "s": engine._s.copy(),
        "ticks": engine._ticks.copy(),
        "dmin": engine._dmin.copy(),
        "ts": engine._ts.copy(),
        "te": engine._te.copy(),
        "bd": engine._best_d.copy(),
        "bs": engine._best_s.copy(),
        "be": engine._best_e.copy(),
    }
    bank = engine.bank
    shadow["args"] = (
        _KIND_CODES[engine._prune_kind],
        np.ascontiguousarray(bank.padded[:, :, 0]),
        bank.lengths,
        bank.epsilons,
        shadow["d"],
        shadow["s"],
        shadow["ticks"],
        shadow["dmin"],
        shadow["ts"],
        shadow["te"],
        shadow["bd"],
        shadow["bs"],
        shadow["be"],
    )
    return shadow


def _assert_states_match(engine, shadow):
    assert shadow["d"].tobytes() == engine._d.tobytes()
    assert shadow["s"].tobytes() == engine._s.tobytes()
    assert np.array_equal(shadow["ticks"], engine._ticks)
    assert shadow["dmin"].tobytes() == engine._dmin.tobytes()
    assert np.array_equal(shadow["ts"], engine._ts)
    assert np.array_equal(shadow["te"], engine._te)
    assert shadow["bd"].tobytes() == engine._best_d.tobytes()
    assert np.array_equal(shadow["bs"], engine._best_s)
    assert np.array_equal(shadow["be"], engine._best_e)


def _match_tuples(pairs):
    return [
        (qi, m.start, m.end, m.distance, m.output_time) for qi, m in pairs
    ]


# ----------------------------------------------------------------------
# Column kernels
# ----------------------------------------------------------------------


def test_update_columns_into_matches_reference(rng):
    for _ in range(20):
        q = int(rng.integers(1, 7))
        m = int(rng.integers(1, 12))
        d = rng.uniform(0.0, 6.0, size=(q, m + 1))
        d[:, 0] = 0.0
        d[rng.random(size=d.shape) < 0.2] = np.inf
        s = rng.integers(1, 40, size=(q, m + 1)).astype(np.int64)
        cost = rng.uniform(0.0, 3.0, size=(q, m))
        ticks = rng.integers(1, 40, size=q).astype(np.int64)
        want_d, want_s = update_columns(d, s, cost, ticks)
        got_d = np.empty_like(want_d)
        got_s = np.empty_like(want_s)
        PLAIN["update_columns_into"](d, s, cost, ticks, got_d, got_s)
        assert got_d.tobytes() == want_d.tobytes()
        assert got_s.tobytes() == want_s.tobytes()


@pytest.mark.parametrize("kind", ["squared", "absolute"])
def test_lb_corridor_into_matches_reference(rng, kind):
    lo = rng.uniform(-4.0, 1.0, size=12)
    hi = lo + rng.uniform(0.0, 5.0, size=12)
    out = np.empty(12, dtype=np.float64)
    for x in (-7.0, 0.0, 2.5, float(hi[5])):
        PLAIN["lb_corridor_into"](x, lo, hi, _KIND_CODES[kind], out)
        want = lb_corridor(x, lo, hi, kind)
        assert out.tobytes() == np.asarray(want).tobytes()


# ----------------------------------------------------------------------
# Fused-bank kernels against a live engine
# ----------------------------------------------------------------------


def test_step_bank_tracks_live_engine(rng):
    engine = _reference_engine(rng)
    shadow = _shadow_of(engine)
    rows = np.arange(engine.q, dtype=np.int64)
    emit = _emit_buffers()
    stream = np.cumsum(rng.normal(size=80))
    for value in stream:
        want = _match_tuples(engine.step(float(value)))
        n = PLAIN["step_bank"](*shadow["args"], float(value), rows, *emit)
        assert _emitted(emit, n) == want
        _assert_states_match(engine, shadow)


def test_step_bank_partial_rows(rng):
    """Stepping a row subset advances exactly those rows."""
    engine = _reference_engine(rng)
    shadow = _shadow_of(engine)
    emit = _emit_buffers()
    hot = np.array([0, 2], dtype=np.int64)
    n = PLAIN["step_bank"](*shadow["args"], 1.25, hot, *emit)
    assert n == 0
    assert np.array_equal(shadow["ticks"], [1, 0, 1, 0])
    # The untouched rows' columns still match the engine's initial state.
    assert shadow["d"][1].tobytes() == engine._d[1].tobytes()
    assert shadow["d"][3].tobytes() == engine._d[3].tobytes()


def test_extend_bank_matches_per_tick_with_skips(rng):
    engine = _reference_engine(rng)
    shadow = _shadow_of(engine)
    stream = np.cumsum(rng.normal(size=60))
    skip = (rng.random(size=60) < 0.15).astype(np.uint8)

    want = []
    for value, skipped in zip(stream, skip):
        # missing="skip": a gap advances time without a column update.
        want.extend(
            _match_tuples(engine.step(float("nan") if skipped else float(value)))
        )

    emit = _emit_buffers()
    got = []
    pos = 0
    while pos < stream.size:
        consumed, n = PLAIN["extend_bank"](
            *shadow["args"], stream[pos:], skip[pos:], *emit
        )
        got.extend(_emitted(emit, n))
        assert consumed > 0
        pos += consumed
    assert got == want
    _assert_states_match(engine, shadow)


def test_extend_bank_respects_emit_capacity(rng):
    """A tiny emit buffer forces mid-block handoffs, never lost matches."""
    query = np.zeros(2)
    engine = FusedSpring.from_springs(
        [Spring(query, epsilon=10.0)], backend="numpy"
    )
    shadow = _shadow_of(engine)
    stream = np.zeros(40)  # every tick confirms eventually
    skip = np.zeros(40, dtype=np.uint8)
    want = []
    for value in stream:
        want.extend(_match_tuples(engine.step(float(value))))

    emit = _emit_buffers(cap=2)
    got = []
    pos = 0
    while pos < stream.size:
        consumed, n = PLAIN["extend_bank"](
            *shadow["args"], stream[pos:], skip[pos:], *emit
        )
        got.extend(_emitted(emit, n))
        assert n <= 2
        assert consumed > 0
        pos += consumed
    assert got == want
    _assert_states_match(engine, shadow)
