"""Backend registry: selection precedence, strictness, degradation.

The registry's contract (``repro.core.backends``):

* precedence — explicit spec > process default (``set_default_backend``
  / ``use_backend``) > ``REPRO_BACKEND`` env var > ``"auto"``;
* ``"auto"`` degrades silently through the priority order and always
  lands somewhere (numpy is unconditionally available);
* explicit names are strict — unknown or unavailable backends raise
  :class:`~repro.exceptions.ValidationError` carrying the probe detail;
* a warm-up failure is cached as unavailability, so a broken compiled
  backend can never be handed out, not even once.

Tests that register throwaway backends snapshot and restore the
registry so nothing leaks into other tests.
"""

from __future__ import annotations

import pytest

import repro.core.backends as bk
from repro.core.backends import (
    KernelBackend,
    available_backends,
    backend_infos,
    best_compiled,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.exceptions import ValidationError


@pytest.fixture(autouse=True)
def _pristine_registry(monkeypatch):
    """Snapshot the registry + default spec; restore after each test."""
    saved_entries = dict(bk._REGISTRY)
    saved_default = bk._DEFAULT_SPEC
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    yield
    bk._REGISTRY.clear()
    bk._REGISTRY.update(saved_entries)
    set_default_backend(saved_default)


class _FakeBackend(KernelBackend):
    name = "fake"
    compiled = True


def _register_fake(priority=99, warmup_error=None, name="fake"):
    backend = _FakeBackend()
    backend.name = name
    if warmup_error is not None:
        def failing_warmup():
            raise RuntimeError(warmup_error)

        backend.warmup = failing_warmup
    register_backend(name, lambda: (backend, "test double"), priority=priority)
    return backend


# ----------------------------------------------------------------------
# Availability listing
# ----------------------------------------------------------------------


def test_numpy_is_always_available():
    assert "numpy" in available_backends()


def test_infos_sorted_by_priority_and_carry_detail():
    infos = backend_infos()
    priorities = [info.priority for info in infos]
    assert priorities == sorted(priorities, reverse=True)
    by_name = {info.name: info for info in infos}
    assert {"numpy", "numba", "cext"} <= set(by_name)
    assert by_name["numpy"].available
    assert not by_name["numpy"].compiled
    for info in infos:
        assert isinstance(info.detail, str) and info.detail


def test_best_compiled_consistent_with_listing():
    best = best_compiled()
    available = available_backends()
    compiled = [
        info.name
        for info in backend_infos()
        if info.compiled and info.name in available
    ]
    if compiled:
        assert best == compiled[0]  # infos are priority-sorted
    else:
        assert best is None


# ----------------------------------------------------------------------
# Resolution and precedence
# ----------------------------------------------------------------------


def test_auto_resolves_to_highest_priority_available():
    backend = resolve_backend("auto")
    assert backend.name == available_backends()[0]


def test_default_spec_is_auto():
    assert resolve_backend(None).name == resolve_backend("auto").name


def test_explicit_name_beats_process_default():
    with use_backend("auto"):
        assert resolve_backend("numpy").name == "numpy"


def test_resolved_instance_passes_through():
    backend = resolve_backend("numpy")
    assert resolve_backend(backend) is backend


def test_process_default_beats_env(monkeypatch):
    # An env var pointing at a *broken* name proves it is not consulted
    # while a process default is installed.
    monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
    with use_backend("numpy"):
        assert resolve_backend(None).name == "numpy"
    with pytest.raises(ValidationError):
        resolve_backend(None)  # default cleared -> env consulted -> boom


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend(None).name == "numpy"


def test_name_is_case_insensitive_and_stripped():
    assert resolve_backend("  NumPy ").name == "numpy"


def test_use_backend_restores_previous_default():
    set_default_backend("numpy")
    with use_backend("auto"):
        assert bk._DEFAULT_SPEC == "auto"
    assert bk._DEFAULT_SPEC == "numpy"
    with pytest.raises(RuntimeError):
        with use_backend("auto"):
            raise RuntimeError("boom")
    assert bk._DEFAULT_SPEC == "numpy"


# ----------------------------------------------------------------------
# Strictness for explicit names
# ----------------------------------------------------------------------


def test_unknown_name_raises_with_choices():
    with pytest.raises(ValidationError, match="auto"):
        resolve_backend("no-such-backend")


def test_unavailable_name_raises_with_reason():
    unavailable = [
        info for info in backend_infos() if not info.available
    ]
    if not unavailable:
        pytest.skip("every registered backend is available here")
    info = unavailable[0]
    with pytest.raises(ValidationError, match="unavailable"):
        resolve_backend(info.name)


# ----------------------------------------------------------------------
# Registration and graceful degradation
# ----------------------------------------------------------------------


def test_registered_backend_wins_auto_at_top_priority():
    backend = _register_fake(priority=99)
    assert resolve_backend("auto") is backend
    assert available_backends()[0] == "fake"


def test_loader_runs_at_most_once():
    calls = []

    def loader():
        calls.append(1)
        return _FakeBackend(), "counted"

    register_backend("counted", loader, priority=98)
    resolve_backend("counted")
    resolve_backend("counted")
    backend_infos()
    assert len(calls) == 1


def test_loader_failure_is_unavailability_not_a_crash():
    def loader():
        raise ImportError("nope")

    register_backend("broken", loader, priority=99)
    # auto silently degrades past it...
    assert resolve_backend("auto").name != "broken"
    # ...explicit naming surfaces the reason.
    with pytest.raises(ValidationError, match="ImportError"):
        resolve_backend("broken")


def test_warmup_failure_is_cached_unavailability():
    _register_fake(priority=99, warmup_error="jit exploded")
    # auto degrades to the next tier without raising.
    assert resolve_backend("auto").name != "fake"
    with pytest.raises(ValidationError, match="warm-up failed"):
        resolve_backend("fake")
    # The failure is memoised as unavailable in the listing too.
    info = [i for i in backend_infos() if i.name == "fake"][0]
    assert not info.available
    assert "jit exploded" in info.detail
