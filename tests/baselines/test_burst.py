"""Unit tests for the burst-detection baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.burst import Burst, BurstDetector
from repro.exceptions import ValidationError


class TestConstruction:
    def test_rejects_empty_windows(self):
        with pytest.raises(ValidationError):
            BurstDetector([], threshold=1.0)

    def test_windows_rounded_to_powers_of_two(self):
        detector = BurstDetector([3, 5, 8], threshold=1.0)
        assert detector.windows == [4, 8]


class TestDetection:
    def test_flat_stream_no_bursts(self, rng):
        detector = BurstDetector([8, 32], threshold=1e9)
        assert detector.extend(rng.normal(size=200)) == []

    def test_energy_burst_detected(self, rng):
        quiet = rng.normal(0, 0.1, 128)
        loud = rng.normal(0, 10.0, 32)
        stream = np.concatenate([quiet, loud, quiet])
        detector = BurstDetector([32], threshold=100.0)
        bursts = detector.extend(stream)
        assert bursts
        # At least one burst window overlaps the loud region.
        assert any(b.start <= 160 and 129 <= b.end for b in bursts)

    def test_burst_value_is_window_sum(self):
        detector = BurstDetector([4], threshold=3.9, absolute=True)
        bursts = detector.extend([1.0, 1.0, 1.0, 1.0])
        assert len(bursts) == 1
        assert bursts[0].value == pytest.approx(4.0)
        assert (bursts[0].start, bursts[0].end) == (1, 4)

    def test_cooldown_suppresses_repeats(self):
        detector = BurstDetector([4], threshold=3.9, cooldown=100)
        bursts = detector.extend([1.0] * 16)
        assert len(bursts) == 1

    def test_signed_mode(self):
        # With absolute=False, alternating signs cancel.
        detector = BurstDetector([4], threshold=3.0, absolute=False)
        assert detector.extend([5.0, -5.0, 5.0, -5.0]) == []

    def test_nan_contributes_nothing(self):
        detector = BurstDetector([2], threshold=1.5)
        bursts = detector.extend([1.0, float("nan"), 1.0, 1.0])
        assert len(bursts) == 1
        assert (bursts[0].start, bursts[0].end) == (3, 4)

    def test_multiple_window_sizes_independent(self, rng):
        quiet = np.zeros(64)
        spike = np.full(8, 10.0)
        stream = np.concatenate([quiet, spike, quiet])
        detector = BurstDetector([8, 64], threshold=60.0)
        bursts = detector.extend(stream)
        sizes = {b.window for b in bursts}
        assert 8 in sizes  # the tight window sees the dense spike


class TestVersusSpring:
    def test_burst_fires_on_any_energy_spring_on_shape(self, rng):
        """The conceptual difference: an explosion template and an
        equally-energetic but differently-shaped rumble both trip the
        burst detector; only the explosion matches under SPRING."""
        from repro.core import spring_search
        from repro.datasets import explosion_query

        template = explosion_query(length=256, spikes=3, amplitude=100.0)
        rumble = rng.normal(0, float(np.abs(template).mean()) * 1.6, 256)
        quiet = rng.normal(0, 1.0, 300)
        stream = np.concatenate([quiet, template, quiet, rumble, quiet])

        detector = BurstDetector([256], threshold=np.abs(template).sum() * 0.6)
        burst_hits = detector.extend(stream)
        assert len(burst_hits) >= 2  # fires on both energetic regions
        hit_template = any(b.start <= 556 and 301 <= b.end for b in burst_hits)
        hit_rumble = any(b.start <= 1112 and 857 <= b.end for b in burst_hits)
        assert hit_template and hit_rumble

        # The planted template matches at distance ~0; the best rumble
        # alignment costs >1e4 — epsilon between the two.
        matches = spring_search(stream, template, epsilon=1e3)
        assert matches
        # Every SPRING match overlaps the *template* region only.
        for match in matches:
            assert match.start <= 556 and 301 <= match.end
