"""Unit tests for the rigid sliding-window Euclidean matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SlidingEuclideanMatcher
from repro.exceptions import NotFittedError


class TestWindows:
    def test_exact_window_found(self, rng):
        y = rng.normal(size=5)
        x = np.concatenate([rng.normal(size=20) + 9, y, rng.normal(size=20) + 9])
        matcher = SlidingEuclideanMatcher(y, epsilon=1e-9)
        matches = matcher.extend(x)
        final = matcher.flush()
        if final:
            matches.append(final)
        assert len(matches) == 1
        assert (matches[0].start, matches[0].end) == (21, 25)
        assert matches[0].length == 5  # windows are rigid

    def test_matches_always_query_length(self, rng):
        y = rng.normal(size=6)
        matcher = SlidingEuclideanMatcher(y, epsilon=10.0)
        matches = matcher.extend(rng.normal(size=200))
        final = matcher.flush()
        if final:
            matches.append(final)
        assert all(m.length == 6 for m in matches)

    def test_best_match_before_full_window_raises(self, rng):
        matcher = SlidingEuclideanMatcher(rng.normal(size=5))
        matcher.step(1.0)
        with pytest.raises(NotFittedError):
            matcher.best_match

    def test_misses_stretched_pattern_that_dtw_catches(self, rng):
        """The motivating failure: rigid windows vs time stretching."""
        from repro.core import spring_search

        y = np.sin(np.linspace(0, 2 * np.pi, 20)) * 3
        stretched = np.repeat(y, 2)  # 2x slower rendition
        x = np.concatenate(
            [rng.normal(size=30), stretched, rng.normal(size=30)]
        )
        epsilon = 5.0
        rigid = SlidingEuclideanMatcher(y, epsilon=epsilon)
        rigid_matches = rigid.extend(x)
        if rigid.flush():
            rigid_matches.append(rigid.flush())
        spring_matches = spring_search(x, y, epsilon)
        assert spring_matches, "SPRING must absorb the 2x stretch"
        assert not rigid_matches, "the rigid matcher must miss it"

    def test_overlapping_windows_collapse_to_local_minimum(self, rng):
        # A flat stream against a flat query qualifies everywhere; only
        # local minima should be reported, not every window.
        matcher = SlidingEuclideanMatcher(np.zeros(4), epsilon=1.0)
        matches = matcher.extend(rng.normal(0, 0.05, size=100))
        final = matcher.flush()
        if final:
            matches.append(final)
        assert len(matches) < 40  # far fewer than the ~97 windows
        for a, b in zip(matches, matches[1:]):
            assert a.end < b.start
