"""Unit tests for the Naive baseline — and its agreement with SPRING."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NaiveSubsequenceMatcher
from repro.core import Spring
from repro.exceptions import NotFittedError, ValidationError


def _collect(matcher, values):
    matches = matcher.extend(values)
    final = matcher.flush()
    if final:
        matches.append(final)
    return [(m.start, m.end, round(m.distance, 9), m.output_time) for m in matches]


class TestConstruction:
    def test_rejects_empty_query(self):
        with pytest.raises(ValidationError):
            NaiveSubsequenceMatcher([])

    def test_rejects_bad_cap(self):
        with pytest.raises(ValidationError):
            NaiveSubsequenceMatcher([1.0], max_matrices=0)

    def test_best_match_before_data_raises(self):
        with pytest.raises(NotFittedError):
            NaiveSubsequenceMatcher([1.0]).best_match


class TestAgreementWithSpring:
    """The heart of the reproduction: identical reports, per Theorem 1."""

    @pytest.mark.parametrize("seed", range(6))
    def test_identical_disjoint_reports(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=120)
        y = rng.normal(size=6)
        epsilon = float(rng.uniform(1.0, 6.0))
        spring = Spring(y, epsilon=epsilon)
        naive = NaiveSubsequenceMatcher(y, epsilon=epsilon)
        assert _collect(spring, x) == _collect(naive, x)

    @pytest.mark.parametrize("seed", range(3))
    def test_identical_with_epsilon_inf(self, seed):
        rng = np.random.default_rng(100 + seed)
        x = rng.normal(size=90)
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=np.inf)
        naive = NaiveSubsequenceMatcher(y, epsilon=np.inf)
        assert _collect(spring, x) == _collect(naive, x)

    def test_identical_best_match(self, rng):
        x = rng.normal(size=80)
        y = rng.normal(size=6)
        spring = Spring(y, epsilon=0.0)
        naive = NaiveSubsequenceMatcher(y, epsilon=0.0)
        spring.extend(x)
        naive.extend(x)
        sb, nb = spring.best_match, naive.best_match
        assert sb.distance == pytest.approx(nb.distance, rel=1e-9)
        assert (sb.start, sb.end) == (nb.start, nb.end)

    def test_identical_with_missing_values(self, rng):
        x = rng.normal(size=100)
        x[::9] = np.nan
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=4.0)
        naive = NaiveSubsequenceMatcher(y, epsilon=4.0)
        assert _collect(spring, x) == _collect(naive, x)


class TestStateGrowth:
    def test_live_matrices_track_ticks(self, rng):
        naive = NaiveSubsequenceMatcher(rng.normal(size=4))
        naive.extend(rng.normal(size=37))
        assert naive.live_matrices == 37
        assert naive.state_floats == 37 * 4

    def test_cap_bounds_state(self, rng):
        naive = NaiveSubsequenceMatcher(rng.normal(size=4), max_matrices=8)
        naive.extend(rng.normal(size=50))
        assert naive.live_matrices == 8
        # Newest starts survive.
        assert naive._starts.max() == 50

    def test_growth_is_amortised(self, rng):
        """Capacity doubles: after 100 ticks capacity is a power of two."""
        naive = NaiveSubsequenceMatcher(rng.normal(size=3))
        naive.extend(rng.normal(size=100))
        assert naive._capacity >= 100
        assert naive._capacity & (naive._capacity - 1) == 0
