"""Unit tests for the Super-Naive oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SuperNaiveMatcher
from repro.core import Spring, spring_search
from repro.core.matches import overlaps
from repro.exceptions import NotFittedError


class TestOracleBasics:
    def test_best_match_agrees_with_spring(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=4)
        oracle = SuperNaiveMatcher(y)
        oracle.extend(x)
        spring = Spring(y, epsilon=0.0)
        spring.extend(x)
        ob, sb = oracle.best_match, spring.best_match
        assert ob.distance == pytest.approx(sb.distance, rel=1e-9)
        assert (ob.start, ob.end) == (sb.start, sb.end)

    def test_best_match_before_data_raises(self):
        with pytest.raises(NotFittedError):
            SuperNaiveMatcher([1.0]).best_match

    def test_finalize_empty_when_nothing_qualifies(self, rng):
        oracle = SuperNaiveMatcher(rng.normal(size=3) + 50, epsilon=0.1)
        oracle.extend(rng.normal(size=25))
        assert oracle.finalize() == []


class TestDisjointOracle:
    def test_groups_are_disjoint(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=4)
        oracle = SuperNaiveMatcher(y, epsilon=3.0)
        oracle.extend(x)
        groups = oracle.finalize()
        for a, b in zip(groups, groups[1:]):
            assert a.end < b.start

    def test_first_spring_report_is_unconditional_group_optimum(self, rng):
        """Before any reset has pruned the matrix, Lemma 2 is absolute:
        no qualifying subsequence overlapping the first report beats it."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            x = local.normal(size=60)
            y = local.normal(size=5)
            epsilon = 3.5
            spring_matches = spring_search(x, y, epsilon)
            if not spring_matches:
                continue
            first = spring_matches[0]
            oracle = SuperNaiveMatcher(y, epsilon=epsilon)
            oracle.extend(x)
            for te, (d, ts) in enumerate(oracle._ending_best):
                interval = (ts + 1, te + 1)
                if d <= epsilon and overlaps(interval, (first.start, first.end)):
                    assert first.distance <= d + 1e-9

    def test_later_reports_only_beaten_by_absorbed_subsequences(self, rng):
        """Lemma 2's group semantics: a qualifying subsequence that beats
        a later SPRING report must have been absorbed into an *earlier*
        group (its start precedes that group's output time) — SPRING's
        cell reset is exactly what discards it."""
        x = rng.normal(size=60)
        y = rng.normal(size=5)
        epsilon = 3.5
        spring_matches = spring_search(x, y, epsilon)
        oracle = SuperNaiveMatcher(y, epsilon=epsilon)
        oracle.extend(x)
        for index, match in enumerate(spring_matches):
            prior_end = (
                spring_matches[index - 1].output_time if index else 0
            ) or 0
            for te, (d, ts) in enumerate(oracle._ending_best):
                interval = (ts + 1, te + 1)
                if (
                    d <= epsilon
                    and overlaps(interval, (match.start, match.end))
                    and d + 1e-9 < match.distance
                ):
                    assert interval[0] <= prior_end, (
                        "a better overlapping subsequence must belong to "
                        "the previous (already reported) group"
                    )
