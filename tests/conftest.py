"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(20070415)  # ICDE 2007 vintage


@pytest.fixture
def paper_stream() -> list:
    """The stream of the paper's Figure 5 worked example."""
    return [5, 12, 6, 10, 6, 5, 13]


@pytest.fixture
def paper_query() -> list:
    """The query of the paper's Figure 5 worked example."""
    return [11, 6, 9, 4]
