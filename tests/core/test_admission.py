"""Unit tests for the tiered admission subsystem (strategy mechanics).

Grouped-vs-flat *parity* lives in
``tests/properties/test_admission_parity.py``; this module pins the
registry surface, auto selection, the counter semantics of the grouped
tier, index-rebuild laziness across park/wake, and the validation
surface — deterministically, the way ``test_prune`` does for the flat
cascade's lifecycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FusedSpring, QueryBank, StreamMonitor
from repro.core.admission import (
    AUTO_GROUP_MIN_QUERIES,
    DEFAULT_GROUP_SIZE,
    AdmissionCascade,
    FlatAdmission,
    GroupedAdmission,
    admission_kinds,
    create_admission,
    register_admission,
    resolve_admission,
)
from repro.exceptions import ValidationError

QUERIES = [[100.0, 101.0, 99.5], [100.5, 99.0, 100.0], [99.8, 100.2]]
EPSILON = 4.0
WARM = [100.0, 100.5, 99.8, 100.2]


def _engine(admission=None, group_size=None, queries=QUERIES):
    return FusedSpring(
        QueryBank(queries, epsilons=EPSILON),
        prune_buffer=16,
        admission=admission,
        admission_group_size=group_size,
    )


def _park_all(engine, cold_ticks=20):
    for value in WARM:
        engine.step(value)
    for _ in range(cold_ticks):
        engine.step(0.0)
    return engine


class TestRegistry:
    def test_builtin_strategies_listed(self):
        kinds = admission_kinds()
        assert "flat" in kinds
        assert "grouped" in kinds
        assert "auto" not in kinds  # selector, not a strategy

    def test_resolve_defaults_to_auto(self):
        assert resolve_admission(None) == "auto"
        assert resolve_admission("auto") == "auto"
        assert resolve_admission("FLAT") == "flat"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValidationError, match="unknown admission"):
            resolve_admission("tiered-maybe")

    def test_reregistering_same_factory_is_noop(self):
        register_admission("flat", FlatAdmission)

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_admission("flat", GroupedAdmission)

    def test_custom_strategy_pluggable(self):
        class Custom(FlatAdmission):
            kind = "test-custom"

        register_admission("test-custom", Custom)
        try:
            engine = _engine("test-custom")
            assert engine.admission_kind == "test-custom"
            _park_all(engine)
            assert engine.parked.all()
        finally:
            from repro.core import admission as module

            module._REGISTRY.pop("test-custom")


class TestAutoSelection:
    def test_small_bank_goes_flat(self):
        assert _engine().admission_kind == "flat"
        assert _engine("auto").admission_kind == "flat"

    def test_large_bank_goes_grouped(self):
        queries = [
            [100.0 + 0.01 * i, 100.5 + 0.01 * i]
            for i in range(AUTO_GROUP_MIN_QUERIES)
        ]
        assert _engine(queries=queries).admission_kind == "grouped"

    def test_explicit_choice_honoured_at_any_size(self):
        assert _engine("grouped").admission_kind == "grouped"
        assert _engine("flat").admission_kind == "flat"

    def test_default_group_size(self):
        engine = _engine("grouped")
        assert engine.admission.group_size == DEFAULT_GROUP_SIZE
        assert _engine("grouped", 7).admission.group_size == 7

    def test_no_admission_without_pruning(self):
        engine = FusedSpring(QueryBank(QUERIES, epsilons=EPSILON))
        assert engine.admission is None
        assert engine.admission_kind is None
        assert engine.groups_certified == 0


class TestValidation:
    def test_unknown_strategy_fails_at_construction(self):
        with pytest.raises(ValidationError):
            _engine("nope")

    def test_bad_group_size_rejected(self):
        with pytest.raises(ValidationError):
            _engine("grouped", 0)
        with pytest.raises(ValidationError):
            create_admission("grouped", _engine(), 16, group_size=-1)

    def test_monitor_validates_eagerly(self):
        with pytest.raises(ValidationError):
            StreamMonitor(admission="bogus")
        with pytest.raises(ValidationError):
            StreamMonitor(admission="grouped", admission_group_size=0)


class TestGroupedTier:
    def test_warm_phase_uses_flat_pass(self):
        """With nothing parked there is nothing to index: the grouped
        strategy must not pay (or count) any group tests."""
        engine = _engine("grouped", 2)
        for value in WARM:
            engine.step(value)
        assert engine.groups_certified == 0
        assert engine.group_descents == 0

    def test_cold_span_certifies_groups(self):
        engine = _park_all(_engine("grouped", 2))
        assert engine.parked.all()
        assert engine.groups_certified > 0
        assert engine.pruned_ticks > 0

    def test_wake_descends(self):
        engine = _park_all(_engine("grouped", 2))
        before = engine.group_descents
        engine.step(100.0)  # back inside every corridor: groups descend
        assert engine.group_descents > before
        assert not engine.parked.any()

    def test_counters_survive_checkpoint_roundtrip(self):
        engine = _park_all(_engine("grouped", 2))
        state = engine.prune_state_dict()
        fresh = _engine("grouped", 2)
        for value in WARM:
            fresh.step(value)
        fresh.restore_prune_state(state)
        assert fresh.groups_certified == engine.groups_certified
        assert fresh.group_descents == engine.group_descents
        np.testing.assert_array_equal(fresh.parked, engine.parked)

    def test_legacy_payload_restores_with_zero_group_counters(self):
        """Checkpoints written before the group counters existed carry
        three counters; they must restore cleanly with the new ones 0."""
        engine = _park_all(_engine("grouped", 2))
        state = engine.prune_state_dict()
        for key in ("groups_certified", "group_descents"):
            state["counters"].pop(key, None)
        fresh = _engine("grouped", 2)
        for value in WARM:
            fresh.step(value)
        fresh.restore_prune_state(state)
        assert fresh.groups_certified == 0
        np.testing.assert_array_equal(fresh.parked, engine.parked)

    def test_index_rebuild_is_lazy(self):
        """The index is rebuilt only when the parked set changed, not
        every tick of a stable cold span."""
        engine = _park_all(_engine("grouped", 2))
        admission = engine.admission
        assert isinstance(admission, GroupedAdmission)
        index = admission._parked_index()
        engine.step(0.0)
        engine.step(0.1)
        assert admission._parked_index() is index  # unchanged set: cached
        engine.step(100.0)  # wake everyone
        engine.step(0.0)  # nothing parked: no index needed yet
        _park_all(engine, cold_ticks=10)
        assert admission._parked_index() is not index

    def test_all_parked_short_circuit(self):
        """A fully-parked certified bank skips the kernel entirely and
        still counts every query-tick as pruned."""
        engine = _park_all(_engine("grouped", 2))
        base = engine.pruned_ticks
        hot = engine._admission.admit(0.0)
        assert hot == (None, 0)
        assert engine.pruned_ticks == base + engine.q


class TestStrategyIsRuntimeProperty:
    def test_payload_is_strategy_independent(self):
        flat = _park_all(_engine("flat"))
        grouped = _park_all(_engine("grouped", 2))
        state_f = flat.prune_state_dict()
        state_g = grouped.prune_state_dict()
        # identical structure: buffer, parked offsets, counter keys
        assert state_f.keys() == state_g.keys()
        assert state_f["parked"] == state_g["parked"]
        assert state_f["counters"].keys() == state_g["counters"].keys()

    def test_cross_strategy_restore(self):
        """A prune payload written under grouped admission re-adopts
        cleanly into a flat engine (restore_prune_state restores the
        cascade only; matcher columns restore separately, so the flat
        engine replays the same history first)."""
        grouped = _park_all(_engine("grouped", 2))
        flat = _park_all(_engine("flat"))
        flat.restore_prune_state(grouped.prune_state_dict())
        np.testing.assert_array_equal(flat.parked, grouped.parked)
        # both continue to the same decisions
        for value in [0.0, 0.5, 100.0, 0.2]:
            expected = grouped.step(value)
            got = flat.step(value)
            assert [
                (qi, m.start, m.end, m.distance) for qi, m in got
            ] == [
                (qi, m.start, m.end, m.distance) for qi, m in expected
            ]


class TestAdmissionBase:
    def test_admit_contract_returns_mask_and_count(self):
        engine = _engine("flat")
        hot, n_hot = engine._admission.admit(0.0)
        assert isinstance(hot, np.ndarray)
        assert n_hot == engine.q

    def test_factory_signature(self):
        engine = _engine()
        cascade = create_admission("grouped", engine, 8, 4)
        assert isinstance(cascade, AdmissionCascade)
        assert cascade.group_size == 4
        assert cascade.buffer.capacity == 8
