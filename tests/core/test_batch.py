"""Unit tests for the batch (stored-sequence) convenience API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Spring,
    spring_best_match,
    spring_search,
    spring_search_vector,
)
from repro.dtw import brute_force_best


class TestSpringSearch:
    def test_equivalent_to_manual_streaming(self, rng):
        x = rng.normal(size=250)
        y = rng.normal(size=7)
        manual = Spring(y, epsilon=3.0)
        expected = manual.extend(x)
        final = manual.flush()
        if final:
            expected.append(final)
        assert spring_search(x, y, epsilon=3.0) == expected

    def test_empty_result_for_impossible_threshold(self, rng):
        assert spring_search(rng.normal(size=50), rng.normal(size=4), 0.0) == []

    def test_record_path_attaches_paths(self, rng):
        y = rng.normal(size=4)
        x = np.concatenate([rng.normal(size=20) + 8, y, rng.normal(size=20) + 8])
        matches = spring_search(x, y, epsilon=1e-9, record_path=True)
        assert len(matches) == 1
        path = matches[0].path
        assert path is not None
        # Path ticks span exactly the match interval.
        assert path[0][0] == matches[0].start
        assert path[-1][0] == matches[0].end
        assert path[-1][1] == 4  # ends at the last query element


class TestSpringBestMatch:
    def test_agrees_with_brute_force(self, rng):
        x = rng.normal(size=35)
        y = rng.normal(size=5)
        best = spring_best_match(x, y)
        bd, bs, be = brute_force_best(x, y)
        assert best.distance == pytest.approx(bd, rel=1e-9)
        assert (best.start - 1, best.end - 1) == (bs, be)


class TestSpringSearchVector:
    def test_scalar_stream_promotes(self, rng):
        x = rng.normal(size=60)
        y = rng.normal(size=5)
        scalar = spring_search(x, y, epsilon=2.0)
        vector = spring_search_vector(x.reshape(-1, 1), y.reshape(-1, 1), 2.0)
        assert [(m.start, m.end) for m in scalar] == [
            (m.start, m.end) for m in vector
        ]
