"""Unit tests for the cascade (coarse-to-fine) matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Spring
from repro.core.cascade import CascadeSpring
from repro.dtw import dtw_distance
from repro.exceptions import ValidationError


def _planted_stream(rng, pattern, pad=120, level=8.0):
    return np.concatenate(
        [rng.normal(size=pad) + level, pattern, rng.normal(size=pad) + level]
    )


class TestConstruction:
    def test_rejects_bad_reduction(self):
        with pytest.raises(ValidationError):
            CascadeSpring([1.0, 2.0], epsilon=1.0, reduction=0)

    def test_rejects_bad_slack(self):
        with pytest.raises(ValidationError):
            CascadeSpring([1.0, 2.0], epsilon=1.0, coarse_slack=0.0)


class TestMatching:
    def test_reduction_one_finds_exactly(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 32)) * 3
        stream = _planted_stream(rng, pattern)
        cascade = CascadeSpring(pattern, epsilon=5.0, reduction=1)
        matches = cascade.extend(stream)
        final = cascade.flush()
        if final:
            matches.append(final)
        assert len(matches) >= 1
        best = min(matches, key=lambda m: m.distance)
        assert abs(best.start - 121) <= 2
        assert abs(best.end - 152) <= 2

    @pytest.mark.parametrize("reduction", [2, 4])
    def test_coarse_stage_still_finds_clear_pattern(self, rng, reduction):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 64)) * 3
        stream = _planted_stream(rng, pattern)
        cascade = CascadeSpring(
            pattern, epsilon=8.0, reduction=reduction, coarse_slack=3.0
        )
        matches = cascade.extend(stream)
        final = cascade.flush()
        if final:
            matches.append(final)
        assert matches, f"reduction {reduction} lost an obvious pattern"
        best = min(matches, key=lambda m: m.distance)
        # Verified positions are full-resolution accurate.
        assert abs(best.start - 121) <= reduction + 2
        assert abs(best.end - 184) <= reduction + 2

    def test_verified_distance_is_true_dtw(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 48)) * 2
        stream = _planted_stream(rng, pattern)
        cascade = CascadeSpring(pattern, epsilon=6.0, reduction=2)
        matches = cascade.extend(stream)
        final = cascade.flush()
        if final:
            matches.append(final)
        for match in matches:
            true = dtw_distance(
                stream[match.start - 1 : match.end], pattern
            )
            assert match.distance == pytest.approx(true, rel=1e-9)

    def test_quiet_stream_reports_nothing(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 32)) * 3
        cascade = CascadeSpring(pattern, epsilon=2.0, reduction=2)
        matches = cascade.extend(rng.normal(size=300) + 9)
        assert matches == []
        assert cascade.flush() is None

    def test_nan_voids_coarse_block_but_time_advances(self, rng):
        pattern = rng.normal(size=8)
        cascade = CascadeSpring(pattern, epsilon=1.0, reduction=2)
        cascade.step(1.0)
        cascade.step(float("nan"))
        cascade.step(1.0)
        assert cascade.tick == 3

    def test_coarse_prefilter_is_cheaper(self, rng):
        """The point of the cascade: far fewer coarse state updates."""
        pattern = np.sin(np.linspace(0, 2 * np.pi, 64)) * 3
        cascade = CascadeSpring(pattern, epsilon=5.0, reduction=4)
        cascade.extend(rng.normal(size=400) + 9)
        assert cascade._coarse.tick == 100  # one coarse tick per 4 values
        assert cascade._coarse.m == 16
