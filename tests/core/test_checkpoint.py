"""Checkpoint/restore exactness tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ConstrainedSpring, Spring, VectorSpring
from repro.core.checkpoint import dump_json, load_json, load_state, save_state
from repro.exceptions import ValidationError


def _matches(matcher, values):
    out = matcher.extend(values)
    final = matcher.flush()
    if final:
        out.append(final)
    return [(m.start, m.end, round(m.distance, 9), m.output_time) for m in out]


class TestRoundTrip:
    @pytest.mark.parametrize("cut", [1, 37, 99])
    def test_spring_resumes_exactly(self, rng, cut):
        x = rng.normal(size=160)
        y = rng.normal(size=7)
        uninterrupted = Spring(y, epsilon=3.0)
        expected = _matches(uninterrupted, x)

        first = Spring(y, epsilon=3.0)
        head = first.extend(x[:cut])
        restored = load_state(save_state(first))
        tail = _matches(restored, x[cut:])
        combined = [
            (m.start, m.end, round(m.distance, 9), m.output_time)
            for m in head
        ] + tail
        assert combined == expected

    def test_json_round_trip(self, rng):
        x = rng.normal(size=80)
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=2.0)
        spring.extend(x[:40])
        restored = load_json(dump_json(spring))
        a = _matches(spring, x[40:])
        b = _matches(restored, x[40:])
        assert a == b

    def test_vector_spring_with_range_reporting(self, rng):
        x = rng.normal(size=(90, 3))
        y = rng.normal(size=(6, 3))
        plain = VectorSpring(y, epsilon=8.0, report_range=True)
        expected = _matches(plain, x)

        first = VectorSpring(y, epsilon=8.0, report_range=True)
        head = _matches_no_flush(first, x[:45])
        restored = load_state(save_state(first))
        tail = _matches(restored, x[45:])
        assert head + tail == expected

    def test_constrained_spring_keeps_band(self, rng):
        y = rng.normal(size=6)
        spring = ConstrainedSpring(y, epsilon=5.0, max_stretch=1.5)
        spring.extend(rng.normal(size=30))
        restored = load_state(save_state(spring))
        assert isinstance(restored, ConstrainedSpring)
        assert restored.max_stretch == 1.5

    def test_path_recording_round_trip(self, rng):
        y = rng.normal(size=4)
        x = np.concatenate(
            [rng.normal(size=30) + 8, y, rng.normal(size=30) + 8]
        )
        spring = Spring(y, epsilon=1e-9, record_path=True)
        spring.extend(x[:32])  # mid-pattern: live paths exist
        restored = load_json(dump_json(spring))
        a = _matches(spring, x[32:])
        b = _matches(restored, x[32:])
        assert a == b
        # Path content survives too.
        direct = Spring(y, epsilon=1e-9, record_path=True)
        expected_paths = [m.path for m in direct.extend(x) + ([direct.flush()] if direct.flush() else [])]
        # Re-run the restored scenario to compare at least one path.
        r2 = Spring(y, epsilon=1e-9, record_path=True)
        r2.extend(x[:32])
        r3 = load_json(dump_json(r2))
        got = r3.extend(x[32:])
        final = r3.flush()
        if final:
            got.append(final)
        assert got and got[0].path is not None

    def test_pending_candidate_survives(self):
        y = [1.0, 2.0, 3.0]
        x = [9.0, 9.0, 1.0, 2.0, 3.0]
        spring = Spring(y, epsilon=0.5)
        spring.extend(x)
        assert spring.has_pending
        restored = load_state(save_state(spring))
        assert restored.has_pending
        final = restored.flush()
        assert final is not None
        assert (final.start, final.end) == (3, 5)


def _matches_no_flush(matcher, values):
    return [
        (m.start, m.end, round(m.distance, 9), m.output_time)
        for m in matcher.extend(values)
    ]


class TestValidation:
    def test_unknown_class_rejected(self, rng):
        state = save_state(Spring([1.0]))
        state["class"] = "EvilSpring"
        with pytest.raises(ValidationError):
            load_state(state)

    def test_version_mismatch_rejected(self):
        state = save_state(Spring([1.0]))
        state["format_version"] = 999
        with pytest.raises(ValidationError):
            load_state(state)

    def test_unregistered_type_rejected(self):
        class HomeGrownMatcher:
            pass

        with pytest.raises(ValidationError, match="not registered"):
            save_state(HomeGrownMatcher())  # type: ignore[arg-type]

    def test_unknown_payload_error_lists_registered_types(self):
        from repro.core.checkpoint import registered_matchers

        state = save_state(Spring([1.0]))
        state["class"] = "EvilSpring"
        with pytest.raises(ValidationError) as excinfo:
            load_state(state)
        for name in registered_matchers():
            assert name in str(excinfo.value)


class TestStrictJson:
    """NaN/Infinity hardening: payloads must be spec-compliant JSON."""

    def test_no_nonstandard_tokens(self):
        spring = Spring([1.0, 2.0, 3.0], epsilon=1.0)
        spring.step(5.0)  # warping column now holds +inf entries
        payload = dump_json(spring)
        assert "Infinity" not in payload and "NaN" not in payload

    def test_rejects_raw_nonfinite(self):
        # allow_nan=False must be active: a raw NaN smuggled into the
        # state dict fails loudly instead of emitting a NaN token.
        state = save_state(Spring([1.0, 2.0]))
        state["epsilon"] = float("nan")
        with pytest.raises(ValueError):
            json.dumps(state, allow_nan=False)

    def test_round_trips_nonfinite_exactly(self):
        spring = Spring([1.0, 2.0, 3.0], epsilon=0.5)
        spring.step(9.0)
        restored = load_json(dump_json(spring))
        np.testing.assert_array_equal(restored._state.d, spring._state.d)
        assert restored._dmin == spring._dmin
        assert restored._best_distance == spring._best_distance

    def test_accepts_legacy_nonstandard_payloads(self):
        # Files written before hardening used Python's NaN/Infinity
        # tokens for some fields; they must still load.
        state = save_state(Spring([1.0, 2.0]))
        legacy = json.dumps(state)  # default: emits bare tokens if any
        legacy = legacy.replace('"dmin": "inf"', '"dmin": Infinity')
        restored = load_json(legacy)
        assert np.isinf(restored._dmin)

    def test_unknown_encoded_string_rejected(self):
        state = save_state(Spring([1.0, 2.0]))
        state["epsilon"] = "huge"
        with pytest.raises(ValidationError):
            load_state(state)

    def test_negative_infinity_encoding(self):
        from repro.core.checkpoint import _decode_float, _encode_float

        assert _encode_float(float("-inf")) == "-inf"
        assert _decode_float("-inf") == -np.inf
        assert _encode_float(float("nan")) == "nan"
        assert np.isnan(_decode_float("nan"))


class TestMonitorJsonHelpers:
    def test_monitor_json_round_trip(self, rng):
        from repro.core import StreamMonitor
        from repro.core.checkpoint import dump_monitor_json, load_monitor_json

        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query("q", rng.normal(size=4), epsilon=2.0)
        monitor.push("s", 0.5)
        payload = dump_monitor_json(monitor)
        assert "Infinity" not in payload and "NaN" not in payload
        restored = load_monitor_json(payload)
        assert restored.matcher("s", "q").tick == 1
