"""Compositions the pre-layered architecture could not express.

Before the refactor, normalisation, length bands, top-k retention and
cascaded verification were welded into separate wrapper classes; the
monitor special-cased plain springs for fusion.  These tests exercise
three previously-impossible combinations end-to-end through
:class:`~repro.core.monitor.StreamMonitor`:

* a *normalised* matcher with a *length band* (transform x admission),
* *top-k* queries sharing a *fused bank* (policy x fused execution),
* a *cascade* matcher checkpointed and resumed mid-stream
  (blocked execution x monitor snapshots).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.normalization import NormalizedSpring
from repro.core.policy import LengthBand
from repro.core.topk import TopKSpring

QUERY = np.array([0.0, 2.0, -1.0, 1.0])


def _stream(rng, n=90):
    values = rng.normal(scale=0.3, size=n)
    values[20:24] = QUERY  # exact occurrence, length m
    # A time-stretched occurrence (each sample doubled): length 2m,
    # outside a 1.5x band but well inside SPRING's unconstrained reach.
    values[50:58] = np.repeat(QUERY, 2)
    return values


def _keys(events):
    return [
        (e.query, e.match.start, e.match.end, e.match.distance)
        for e in events
    ]


class TestNormalizedPlusLengthBand:
    """Transform layer composed with an admission-gating policy."""

    def test_band_gates_normalized_matches(self, rng):
        stream = _stream(rng)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query(
            "nq", QUERY, epsilon=2.0, matcher="normalized",
            warmup=4, policies=[LengthBand(1.5)],
        )
        events = list(monitor.push_many("s", stream)) + list(monitor.flush())
        assert events  # the in-band occurrence is found
        m = QUERY.shape[0]
        for event in events:
            length = event.match.end - event.match.start + 1
            assert m / 1.5 <= length <= m * 1.5

    def test_matches_direct_composition(self, rng):
        stream = _stream(rng)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query(
            "nq", QUERY, epsilon=2.0, matcher="normalized",
            warmup=4, policies=[LengthBand(1.5)],
        )
        events = list(monitor.push_many("s", stream)) + list(monitor.flush())

        direct = NormalizedSpring(
            QUERY, epsilon=2.0, warmup=4, policies=[LengthBand(1.5)]
        )
        expected = list(direct.extend(stream))
        final = direct.flush()
        if final is not None:
            expected.append(final)
        assert [(e.match.start, e.match.end, e.match.distance)
                for e in events] == [
            (m.start, m.end, m.distance) for m in expected
        ]


class TestTopKInFusedBank:
    """Transform-only policies keep matchers bank-fusable."""

    def test_topk_queries_share_a_bank(self, rng):
        stream = _stream(rng)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        for i in range(3):
            monitor.add_query(
                f"q{i}", QUERY, epsilon=6.0, matcher="topk", k=2
            )
        monitor.push_many("s", stream)
        plan = monitor._plans["s"]
        assert plan is not None and len(plan.banks) == 1
        assert sorted(plan.banks[0].names) == ["q0", "q1", "q2"]

    def test_banked_topk_equals_per_matcher(self, rng):
        stream = _stream(rng)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        for i in range(3):
            monitor.add_query(
                f"q{i}", QUERY, epsilon=6.0, matcher="topk", k=2
            )
        events = list(monitor.push_many("s", stream)) + list(monitor.flush())

        reference = TopKSpring(QUERY, k=2, epsilon=6.0)
        expected = list(reference.extend(stream))
        final = reference.flush()
        if final is not None:
            expected.append(final)
        expected_keys = [
            (f"q{i}", m.start, m.end, m.distance)
            for m in expected
            for i in range(3)
        ]
        assert sorted(_keys(events)) == sorted(expected_keys)

        # The leaderboards themselves agree with the unbanked run.
        boards = [
            [(m.start, m.end, m.distance)
             for m in monitor.matcher("s", f"q{i}").best()]
            for i in range(3)
        ]
        want = [(m.start, m.end, m.distance) for m in reference.best()]
        assert boards == [want, want, want]


class TestCascadeCheckpointResume:
    """Blocked cascade execution survives a monitor snapshot round-trip."""

    @pytest.mark.parametrize("cut", [17, 40, 63])
    def test_resume_mid_stream(self, rng, cut):
        stream = _stream(rng)

        def fresh():
            monitor = StreamMonitor()
            monitor.add_stream("s")
            monitor.add_query(
                "c", QUERY, epsilon=2.0, matcher="cascade", reduction=2
            )
            return monitor

        baseline = fresh()
        expected = _keys(baseline.push_many("s", stream))
        expected += _keys(baseline.flush())

        first = fresh()
        head = _keys(first.push_many("s", stream[:cut]))
        blob = json.dumps(save_monitor(first))  # survives a process hop
        restored = load_monitor(json.loads(blob))
        tail = _keys(restored.push_many("s", stream[cut:]))
        tail += _keys(restored.flush())
        assert head + tail == expected
        assert expected  # the workload does produce matches
