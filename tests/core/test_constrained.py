"""Unit tests for the length-banded ConstrainedSpring extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstrainedSpring, Spring
from repro.exceptions import ValidationError


class TestConstruction:
    def test_rejects_stretch_below_one(self):
        with pytest.raises(ValueError):
            ConstrainedSpring([1.0, 2.0], max_stretch=0.5)

    def test_rejects_nonpositive_stretch(self):
        with pytest.raises(ValidationError):
            ConstrainedSpring([1.0, 2.0], max_stretch=0.0)


class TestBandBehaviour:
    def test_large_band_equals_unconstrained(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=8)
        plain = Spring(y, epsilon=3.0)
        banded = ConstrainedSpring(y, epsilon=3.0, max_stretch=1e6)
        mp = plain.extend(x)
        mb = banded.extend(x)
        assert [(m.start, m.end) for m in mp] == [(m.start, m.end) for m in mb]

    def test_rejects_overstretched_match(self):
        # Query of length 4 planted stretched to length 12 (3x): a band
        # of 2x must refuse it, the plain matcher accepts it.
        y = np.array([0.0, 3.0, 3.0, 0.0])
        stretched = np.repeat(y, 3)
        x = np.concatenate([np.full(10, 9.0), stretched, np.full(10, 9.0)])
        plain = Spring(y, epsilon=0.5)
        banded = ConstrainedSpring(y, epsilon=0.5, max_stretch=2.0)
        plain_matches = plain.extend(x)
        if plain.flush():
            plain_matches.append(plain.flush())
        banded_matches = banded.extend(x)
        final = banded.flush()
        if final:
            banded_matches.append(final)
        assert any(m.length >= 12 for m in plain_matches) or plain.has_pending or plain_matches
        assert all(
            m.length <= 8 for m in banded_matches
        )  # 2x band over m=4

    def test_accepts_in_band_match(self, rng):
        y = rng.normal(size=6)
        x = np.concatenate([rng.normal(size=20) + 9, y, rng.normal(size=20) + 9])
        banded = ConstrainedSpring(y, epsilon=1e-9, max_stretch=1.5)
        matches = banded.extend(x)
        final = banded.flush()
        if final:
            matches.append(final)
        assert len(matches) == 1
        assert (matches[0].start, matches[0].end) == (21, 26)

    def test_best_match_respects_band(self, rng):
        y = rng.normal(size=5)
        x = rng.normal(size=100)
        banded = ConstrainedSpring(y, epsilon=0.0, max_stretch=1.2)
        banded.extend(x)
        best = banded.best_match
        assert 5 / 1.2 <= best.length <= 5 * 1.2
