"""Unit tests for the dynamically-normalised matcher.

The exhaustive oracle equality lives in the slow differential suite
(``tests/properties/test_oracle_differential.py``); this file covers
construction validation, the matching behaviour the matcher exists for
(amplitude/offset invariance), the unified missing-value policy, prune
parity, and kill-at-any-tick byte-identical checkpoint resume.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DynNormSpring, build_matcher
from repro.core.checkpoint import load_state, save_state
from repro.exceptions import (
    NotFittedError,
    StreamValueError,
    ValidationError,
)

QUERY = [0.0, 2.0, -1.0, 1.0]


def _noise_with_copies(seed=0, n=90):
    """Noise with the query embedded raw, scaled, and shifted."""
    rng = np.random.default_rng(seed)
    x = rng.normal(scale=0.3, size=n)
    q = np.asarray(QUERY)
    x[20:24] = q
    x[50:54] = 4.0 * q - 12.0    # pure affine copy: per-window distance ~0
    x[75:79] = 0.25 * q + 300.0  # tiny amplitude on a huge offset
    return [float(v) for v in x]


def _run(matcher, values):
    matches = matcher.extend(values)
    final = matcher.flush()
    if final is not None:
        matches.append(final)
    return matches


class TestConstruction:
    def test_constant_query_rejected(self):
        with pytest.raises(ValidationError, match="constant"):
            DynNormSpring([5.0, 5.0, 5.0])

    def test_band_defaults_derive_from_query_length(self):
        matcher = DynNormSpring(QUERY)
        assert matcher.min_length == 2  # max(2, ceil(4 / 2))
        assert matcher.max_length == 8

    def test_min_length_below_two_rejected(self):
        with pytest.raises(ValidationError, match="min_length"):
            DynNormSpring(QUERY, min_length=1)

    def test_inverted_band_rejected(self):
        with pytest.raises(ValidationError, match="max_length"):
            DynNormSpring(QUERY, min_length=5, max_length=4)

    def test_negative_min_std_rejected(self):
        with pytest.raises(ValidationError, match="min_std"):
            DynNormSpring(QUERY, min_std=-0.1)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            DynNormSpring(QUERY, epsilon=-1.0)

    def test_bad_missing_policy_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            DynNormSpring(QUERY, missing="ignore")

    def test_registered_as_kind(self):
        matcher = build_matcher("dynnorm", QUERY, epsilon=1.0)
        assert isinstance(matcher, DynNormSpring)

    def test_capabilities(self):
        caps = DynNormSpring(QUERY).capabilities()
        assert caps.kind == "scalar"
        assert caps.fusable is False
        assert caps.distance_name == "squared"
        assert caps.missing == "skip"


class TestMatching:
    def test_finds_affine_copies_of_the_query(self):
        matcher = DynNormSpring(QUERY, epsilon=0.25, min_length=4)
        matches = _run(matcher, _noise_with_copies())
        spans = [(m.start, m.end) for m in matches]
        for embedded in ((21, 24), (51, 54), (76, 79)):
            assert any(
                s <= embedded[0] and e >= embedded[1] or
                (s, e) == embedded
                for s, e in spans
            ), f"embedded copy {embedded} not covered by {spans}"
        hits = [m for m in matches if (m.start, m.end) in
                ((21, 24), (51, 54), (76, 79))]
        assert len(hits) == 3
        for m in hits:
            assert m.distance == pytest.approx(0.0, abs=1e-12)

    def test_raw_spring_cannot_see_the_shifted_copy(self):
        # The reason this matcher exists: a +300 offset pushes the raw
        # DTW distance far beyond any sane epsilon.
        from repro.core import Spring

        values = _noise_with_copies()
        raw = Spring(QUERY, epsilon=0.25)
        raw_matches = _run(raw, values)
        assert not any(m.start >= 70 for m in raw_matches)

    def test_best_match_tracks_global_minimum(self):
        matcher = DynNormSpring(QUERY, epsilon=0.0, min_length=4)
        matcher.extend(_noise_with_copies())
        best = matcher.best_match
        assert best.distance == pytest.approx(0.0, abs=1e-12)
        assert best.output_time is None

    def test_best_match_before_data_raises(self):
        with pytest.raises(NotFittedError):
            DynNormSpring(QUERY).best_match

    def test_reports_are_disjoint_and_qualify(self):
        matcher = DynNormSpring(QUERY, epsilon=0.75)
        matches = _run(matcher, _noise_with_copies(seed=3))
        for m in matches:
            assert m.distance <= 0.75
            if m.output_time is not None:
                assert m.output_time >= m.end
        for i, a in enumerate(matches):
            for b in matches[i + 1:]:
                assert not a.overlaps(b)

    def test_flush_is_idempotent(self):
        matcher = DynNormSpring(QUERY, epsilon=0.5, min_length=4)
        matcher.extend([float(v) for v in QUERY])
        assert matcher.flush() is not None
        assert matcher.flush() is None

    def test_min_std_skips_flat_windows(self):
        # A constant run has no scale; with min_std=0 only exactly-flat
        # windows are skipped, a positive min_std also drops near-flat.
        matcher = DynNormSpring(QUERY, epsilon=np.inf, min_length=2,
                                max_length=3)
        matcher.extend([5.0, 5.0, 5.0, 5.0])
        with pytest.raises(NotFittedError):
            matcher.best_match

    def test_prune_parity(self):
        values = _noise_with_copies(seed=11)
        pruned = DynNormSpring(QUERY, epsilon=0.5, min_length=3,
                               max_length=10)
        plain = DynNormSpring(QUERY, epsilon=0.5, min_length=3,
                              max_length=10, prune=False)
        got = [(m.start, m.end, m.distance, m.output_time)
               for m in _run(pruned, values)]
        want = [(m.start, m.end, m.distance, m.output_time)
                for m in _run(plain, values)]
        assert got == want


class TestMissingPolicy:
    def test_nan_skip_advances_time_and_windows_span_gaps(self):
        q = np.asarray(QUERY)
        values = [1.0, float("nan"), *(2.0 * q + 7.0), float("nan")]
        matcher = DynNormSpring(QUERY, epsilon=0.25, min_length=4,
                                max_length=4)
        matches = _run(matcher, values)
        assert matcher.tick == len(values)
        assert [(m.start, m.end) for m in matches] == [(3, 6)]

    def test_window_spanning_a_gap_keeps_raw_ticks(self):
        q = np.asarray(QUERY)
        head = [float(q[0]), float(q[1]), float("nan")]
        tail = [float(q[2]), float(q[3])]
        matcher = DynNormSpring(QUERY, epsilon=0.25, min_length=4,
                                max_length=4)
        matches = _run(matcher, head + tail)
        assert [(m.start, m.end) for m in matches] == [(1, 5)]

    def test_nan_error_policy_raises_without_advancing(self):
        matcher = DynNormSpring(QUERY, missing="error")
        matcher.step(1.0)
        with pytest.raises(StreamValueError, match="tick 2 is NaN"):
            matcher.step(float("nan"))
        assert matcher.tick == 1

    def test_inf_always_raises_without_advancing(self):
        for policy in ("skip", "error"):
            matcher = DynNormSpring(QUERY, missing=policy)
            matcher.step(1.0)
            with pytest.raises(StreamValueError, match="tick 2 is infinite"):
                matcher.step(float("inf"))
            assert matcher.tick == 1

    def test_extend_carries_partial_matches(self):
        q = np.asarray(QUERY)
        values = [*(q * 1.0), *(q * 2.0), float("inf"), 0.0]
        matcher = DynNormSpring(QUERY, epsilon=0.25, min_length=4,
                                max_length=4)
        try:
            matcher.extend(values)
        except StreamValueError as err:
            assert [(m.start, m.end) for m in err.partial_matches] == [(1, 4)]
        else:  # pragma: no cover - the stream contains inf
            pytest.fail("inf did not raise")

    def test_raise_alias_normalises(self):
        assert DynNormSpring(QUERY, missing="raise").missing == "error"


class TestCheckpoint:
    def test_kill_at_any_tick_resume_is_byte_identical(self):
        values = _noise_with_copies(seed=5)[:60]
        values[7] = float("nan")
        values[33] = float("nan")

        reference = DynNormSpring(QUERY, epsilon=0.5, min_length=3,
                                  max_length=9)
        expected = [(m.start, m.end, m.distance, m.output_time)
                    for m in _run(reference, values)]

        for cut in range(len(values) + 1):
            first = DynNormSpring(QUERY, epsilon=0.5, min_length=3,
                                  max_length=9)
            head = first.extend(values[:cut])
            blob = json.dumps(save_state(first))
            restored = load_state(json.loads(blob))
            # Byte-identical state after the hop, not merely equivalent.
            assert json.dumps(save_state(restored)) == blob
            tail = restored.extend(values[cut:])
            final = restored.flush()
            if final is not None:
                tail.append(final)
            got = [(m.start, m.end, m.distance, m.output_time)
                   for m in head + tail]
            assert got == expected, f"divergence after resume at tick {cut}"

    def test_state_dict_round_trips_configuration(self):
        matcher = DynNormSpring(QUERY, epsilon=1.5, min_length=3,
                                max_length=6, min_std=0.01,
                                local_distance="absolute",
                                missing="error", prune=False)
        restored = DynNormSpring.from_state(matcher.state_dict())
        assert restored.epsilon == 1.5
        assert restored.min_length == 3
        assert restored.max_length == 6
        assert restored.min_std == 0.01
        assert restored.distance_name == "absolute"
        assert restored.missing == "error"
        assert restored.prune is False

    def test_custom_callable_distance_cannot_checkpoint(self):
        matcher = DynNormSpring(QUERY, local_distance=lambda a, b: abs(a - b))
        with pytest.raises(ValidationError, match="unnamed local-distance"):
            matcher.state_dict()


class TestMonitorIntegration:
    def test_runs_under_stream_monitor(self):
        from repro.core import StreamMonitor

        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query("q", QUERY, epsilon=0.25, matcher="dynnorm",
                          min_length=4, max_length=4)
        events = []
        for value in _noise_with_copies():
            events.extend(monitor.push("s", value))
        events.extend(monitor.flush())
        spans = [(e.match.start, e.match.end) for e in events]
        assert (51, 54) in spans  # the affine copy, found through the monitor
