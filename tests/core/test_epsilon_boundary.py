"""Matches at exactly distance ε must report (paper's Problem 2).

The paper defines qualification as ``Dist(X[ts..te], Y) <= ε`` —
inclusive.  A subsequence whose distance lands *exactly* on ε is a
match, and every execution path (scalar step, blocked extend, fused
bank, pruned fused bank, monitor) must report it.  Dyadic inputs make
the distances exactly representable, so these are bit-level boundary
tests, not approximate ones.

The pruning cascade has its own boundary here: the corridor bound
parks a query only when ``lb > ε`` strictly, so a tick whose bound
equals ε must still be processed — collapsing that to ``>=`` would
silently drop exactly-ε matches, which the last test would catch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FusedSpring, QueryBank, Spring, StreamMonitor
from repro.dtw.subsequence import brute_force_all

# query [3], stream value 4 -> squared distance exactly 1.0
QUERY = [3.0]
EPSILON = 1.0


def _events(engine, stream):
    events = []
    for value in stream:
        events.extend(engine.step(value))
    events.extend(engine.flush())
    return events


class TestExactEpsilonReports:
    def test_oracle_confirms_the_boundary(self):
        D = brute_force_all([0.0, 4.0, 0.0], QUERY)
        assert D[1, 1] == EPSILON  # the subsequence [4.0] sits exactly on ε

    def test_scalar_step_reports_exact_epsilon(self):
        spring = Spring(QUERY, epsilon=EPSILON)
        matches = []
        for value in [0.0, 4.0, 0.0]:
            match = spring.step(value)
            if match is not None:
                matches.append(match)
        final = spring.flush()
        if final is not None:
            matches.append(final)
        assert [m.distance for m in matches] == [EPSILON]
        assert matches[0].start == matches[0].end == 2

    def test_blocked_extend_reports_exact_epsilon(self):
        spring = Spring(QUERY, epsilon=EPSILON)
        matches = list(spring.extend([0.0, 4.0, 0.0]))
        final = spring.flush()
        if final is not None:
            matches.append(final)
        assert [m.distance for m in matches] == [EPSILON]

    @pytest.mark.parametrize("prune_buffer", [None, 4])
    def test_fused_reports_exact_epsilon(self, prune_buffer):
        engine = FusedSpring(
            QueryBank([QUERY, QUERY], epsilons=EPSILON),
            prune_buffer=prune_buffer,
        )
        events = _events(engine, [0.0, 4.0, 0.0])
        assert [(qi, m.distance) for qi, m in events] == [
            (0, EPSILON),
            (1, EPSILON),
        ]

    @pytest.mark.parametrize("prune", [True, False])
    def test_monitor_reports_exact_epsilon(self, prune):
        monitor = StreamMonitor(prune=prune)
        monitor.add_stream("s")
        monitor.add_query("a", QUERY, epsilon=EPSILON)
        monitor.add_query("b", QUERY, epsilon=EPSILON)
        events = []
        for value in [0.0, 4.0, 0.0]:
            events.extend(monitor.push("s", value))
        assert [e.match.distance for e in events] == [EPSILON, EPSILON]

    def test_epsilon_boundary_while_pruning_is_armed(self):
        """An exactly-ε match after parking conditions are armed.

        First a perfect match (arming ``best_d = 0 <= ε``, the park
        precondition), then cold values (parking the query), then a
        value whose corridor bound equals ε exactly — the strict
        ``lb > ε`` park test must keep processing it, and the exactly-ε
        subsequence must report on both engines identically.
        """
        stream = [3.0, 100.0, 100.0, 100.0, 4.0]
        plain = FusedSpring(QueryBank([QUERY, QUERY], epsilons=EPSILON))
        pruned = FusedSpring(
            QueryBank([QUERY, QUERY], epsilons=EPSILON), prune_buffer=2
        )
        expected = [
            (qi, m.start, m.end, m.distance, m.output_time)
            for qi, m in _events(plain, stream)
        ]
        got = [
            (qi, m.start, m.end, m.distance, m.output_time)
            for qi, m in _events(pruned, stream)
        ]
        assert got == expected
        assert [t[3] for t in expected] == [0.0, 0.0, EPSILON, EPSILON]
        # the cold middle span did engage the cascade
        assert pruned.pruned_ticks > 0
