"""Unit tests for the fused multi-query engine (QueryBank / FusedSpring).

The load-bearing property is *exact* equivalence with per-query
:class:`~repro.core.spring.Spring`: identical (start, end, output_time)
tuples and rel-tol-equal distances, on easy streams and on the nasty
ones (NaN gaps, tied costs, ragged padded banks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FusedSpring, QueryBank, Spring
from repro.exceptions import NotFittedError, ValidationError


def reference_events(queries, epsilons, stream, missing="skip"):
    """Ground truth: per-query Springs stepped value by value."""
    springs = [
        Spring(q, epsilon=e, missing=missing)
        for q, e in zip(queries, epsilons)
    ]
    events = []
    for value in stream:
        for qi, spring in enumerate(springs):
            match = spring.step(value)
            if match is not None:
                events.append((qi, match))
    for qi, spring in enumerate(springs):
        match = spring.flush()
        if match is not None:
            events.append((qi, match))
    return springs, events


def fused_events(engine, stream, use_extend=False):
    if use_extend:
        events = list(engine.extend(stream))
    else:
        events = [pair for value in stream for pair in engine.step(float(value))]
    events.extend(engine.flush())
    return events


def assert_equivalent(expected, got):
    assert len(expected) == len(got)
    for (qe, me), (qg, mg) in zip(expected, got):
        assert qe == qg
        assert (me.start, me.end, me.output_time) == (
            mg.start,
            mg.end,
            mg.output_time,
        )
        assert mg.distance == pytest.approx(me.distance, rel=1e-9, abs=1e-12)


class TestQueryBank:
    def test_basic_properties(self):
        bank = QueryBank([[1.0, 2.0, 3.0], [4.0, 5.0]], epsilons=2.0)
        assert bank.q == len(bank) == 2
        assert bank.m_max == 3
        assert bank.ragged
        assert list(bank.lengths) == [3, 2]
        assert bank.names == ("q0", "q1")
        np.testing.assert_array_equal(bank.query(1), [4.0, 5.0])

    def test_scalar_epsilon_broadcasts(self):
        bank = QueryBank([[1.0], [2.0]], epsilons=1.5)
        np.testing.assert_array_equal(bank.epsilons, [1.5, 1.5])

    def test_rejects_empty_bank(self):
        with pytest.raises(ValidationError):
            QueryBank([])

    def test_rejects_mismatched_epsilons(self):
        with pytest.raises(ValidationError):
            QueryBank([[1.0], [2.0]], epsilons=[1.0])

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValidationError):
            QueryBank([[1.0]], names=["a", "b"])

    def test_rejects_invalid_query(self):
        with pytest.raises(ValidationError):
            QueryBank([[1.0, np.nan]])


class TestEquivalence:
    @pytest.mark.parametrize("use_extend", [False, True])
    def test_random_walks(self, rng, use_extend):
        queries = [np.cumsum(rng.normal(size=m)) for m in (5, 9, 9, 3)]
        epsilons = [2.0, 8.0, np.inf, 0.5]
        stream = np.cumsum(rng.normal(size=600))
        _, expected = reference_events(queries, epsilons, stream)
        engine = FusedSpring(QueryBank(queries, epsilons=epsilons))
        got = fused_events(engine, stream, use_extend=use_extend)
        assert_equivalent(expected, got)

    @pytest.mark.parametrize("use_extend", [False, True])
    def test_nan_bearing_stream(self, rng, use_extend):
        queries = [rng.normal(size=4), rng.normal(size=6)]
        epsilons = [3.0, 3.0]
        stream = rng.normal(size=300)
        stream[20:30] = np.nan
        stream[150] = np.nan
        _, expected = reference_events(queries, epsilons, stream)
        engine = FusedSpring(QueryBank(queries, epsilons=epsilons))
        got = fused_events(engine, stream, use_extend=use_extend)
        assert_equivalent(expected, got)

    @pytest.mark.parametrize("use_extend", [False, True])
    def test_tied_costs(self, rng, use_extend):
        # Heavily quantised values make equal-cost cells the norm, so the
        # tie-break order of Equation 5 is exercised constantly.
        queries = [
            rng.integers(0, 3, size=m).astype(float) for m in (4, 4, 7)
        ]
        epsilons = [1.0, 4.0, 9.0]
        stream = rng.integers(0, 3, size=500).astype(float)
        _, expected = reference_events(queries, epsilons, stream)
        engine = FusedSpring(QueryBank(queries, epsilons=epsilons))
        got = fused_events(engine, stream, use_extend=use_extend)
        assert_equivalent(expected, got)

    def test_ragged_bank_matches_each_length(self, rng):
        # Short queries padded next to long ones must behave exactly as
        # they do alone; padding must never leak into decisions.
        queries = [rng.normal(size=m) for m in (2, 11, 5, 8, 3)]
        epsilons = [1.0] * len(queries)
        stream = np.concatenate(
            [rng.normal(size=40) + 6, queries[2], rng.normal(size=40) + 6]
        )
        _, expected = reference_events(queries, epsilons, stream)
        engine = FusedSpring(QueryBank(queries, epsilons=epsilons))
        got = fused_events(engine, stream)
        assert_equivalent(expected, got)

    def test_best_match_tracking(self, rng):
        queries = [rng.normal(size=5), rng.normal(size=8)]
        stream = rng.normal(size=200)
        springs, _ = reference_events(queries, [np.inf, np.inf], stream)
        engine = FusedSpring(QueryBank(queries, epsilons=np.inf))
        fused_events(engine, stream)
        for qi, spring in enumerate(springs):
            expected = spring.best_match
            got = engine.best_match(qi)
            assert (expected.start, expected.end) == (got.start, got.end)
            assert got.distance == pytest.approx(expected.distance, rel=1e-9)

    def test_best_match_before_data_raises(self):
        engine = FusedSpring(QueryBank([[1.0, 2.0]]))
        with pytest.raises(NotFittedError):
            engine.best_match(0)


class TestValidation:
    def test_rejects_bad_missing_policy(self):
        with pytest.raises(ValidationError):
            FusedSpring(QueryBank([[1.0]]), missing="drop")

    def test_step_rejects_infinite_value(self):
        engine = FusedSpring(QueryBank([[1.0]]))
        with pytest.raises(ValidationError):
            engine.step(np.inf)

    def test_step_rejects_vector_value(self):
        engine = FusedSpring(QueryBank([[1.0]]))
        with pytest.raises(ValidationError):
            engine.step([1.0, 2.0])

    def test_missing_error_policy_raises_on_nan(self):
        engine = FusedSpring(QueryBank([[1.0]]), missing="error")
        with pytest.raises(ValidationError):
            engine.step(np.nan)

    def test_extend_raises_on_inf_after_prefix(self, rng):
        engine = FusedSpring(QueryBank([rng.normal(size=3)]))
        stream = rng.normal(size=20)
        stream[10] = np.inf
        with pytest.raises(ValidationError):
            engine.extend(stream)
        # The prefix before the bad tick was fully consumed.
        assert engine.ticks[0] == 10

    def test_extend_accepts_lists_and_column_vectors(self, rng):
        q = [rng.normal(size=3)]
        stream = rng.normal(size=50)
        a = FusedSpring(QueryBank(q))
        b = FusedSpring(QueryBank(q))
        a.extend(list(stream))
        b.extend(stream.reshape(-1, 1))
        np.testing.assert_array_equal(a.ticks, b.ticks)
        np.testing.assert_allclose(a._d, b._d)


class TestSpringInterop:
    def test_from_springs_adopts_mid_stream_state(self, rng):
        queries = [rng.normal(size=4), rng.normal(size=7)]
        stream = rng.normal(size=400)
        cut = 137
        # Reference: uninterrupted per-query run.
        _, expected = reference_events(queries, [2.0, 2.0], stream)
        # Fused run adopted mid-stream from warm springs.
        springs = [Spring(q, epsilon=2.0) for q in queries]
        head = []
        for value in stream[:cut]:
            for qi, spring in enumerate(springs):
                match = spring.step(float(value))
                if match is not None:
                    head.append((qi, match))
        engine = FusedSpring.from_springs(springs)
        tail = fused_events(engine, stream[cut:])
        assert_equivalent(expected, head + tail)

    def test_write_back_resumes_per_query(self, rng):
        queries = [rng.normal(size=4), rng.normal(size=7)]
        stream = rng.normal(size=400)
        cut = 251
        _, expected = reference_events(queries, [2.0, 2.0], stream)
        springs = [Spring(q, epsilon=2.0) for q in queries]
        engine = FusedSpring.from_springs(springs)
        head = [pair for v in stream[:cut] for pair in engine.step(float(v))]
        engine.write_back(springs)
        tail = []
        for value in stream[cut:]:
            for qi, spring in enumerate(springs):
                match = spring.step(float(value))
                if match is not None:
                    tail.append((qi, match))
        for qi, spring in enumerate(springs):
            match = spring.flush()
            if match is not None:
                tail.append((qi, match))
        assert_equivalent(expected, head + tail)

    def test_from_springs_rejects_mixed_policies(self, rng):
        a = Spring(rng.normal(size=3), missing="skip")
        b = Spring(rng.normal(size=3), missing="error")
        with pytest.raises(ValidationError):
            FusedSpring.from_springs([a, b])

    def test_from_springs_rejects_path_recording(self, rng):
        a = Spring(rng.normal(size=3))
        b = Spring(rng.normal(size=3), record_path=True)
        with pytest.raises(ValidationError):
            FusedSpring.from_springs([a, b])

    def test_write_back_arity_checked(self, rng):
        engine = FusedSpring(QueryBank([rng.normal(size=3)]))
        with pytest.raises(ValidationError):
            engine.write_back([])
