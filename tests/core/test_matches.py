"""Unit tests for Match records and interval helpers."""

from __future__ import annotations

import pytest

from repro.core import Match, merge_report, overlaps


class TestMatchValidation:
    def test_rejects_start_below_one(self):
        with pytest.raises(ValueError):
            Match(start=0, end=3, distance=1.0)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            Match(start=5, end=4, distance=1.0)

    def test_rejects_output_before_end(self):
        with pytest.raises(ValueError):
            Match(start=1, end=5, distance=1.0, output_time=4)

    def test_length_and_slice(self):
        match = Match(start=3, end=7, distance=0.5)
        assert match.length == 5
        assert match.slice == slice(2, 7)

    def test_report_delay(self):
        match = Match(start=1, end=5, distance=0.0, output_time=9)
        assert match.report_delay == 4
        assert Match(start=1, end=5, distance=0.0).report_delay is None

    def test_overlap_method(self):
        a = Match(start=1, end=5, distance=0.0)
        b = Match(start=5, end=9, distance=0.0)
        c = Match(start=6, end=9, distance=0.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_frozen(self):
        match = Match(start=1, end=2, distance=0.0)
        with pytest.raises(AttributeError):
            match.start = 5  # type: ignore[misc]


class TestIntervalHelpers:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((1, 5), (5, 9), True),
            ((1, 5), (6, 9), False),
            ((3, 4), (1, 10), True),
            ((1, 1), (1, 1), True),
        ],
    )
    def test_overlaps(self, a, b, expected):
        assert overlaps(a, b) is expected
        assert overlaps(b, a) is expected

    def test_merge_report_orders_and_dedups(self):
        matches = [
            Match(start=10, end=12, distance=1.0),
            Match(start=1, end=3, distance=2.0),
            Match(start=10, end=12, distance=1.0),
        ]
        merged = merge_report(matches)
        assert [(m.start, m.end) for m in merged] == [(1, 3), (10, 12)]
