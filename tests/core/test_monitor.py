"""Unit tests for the multi-stream, multi-query StreamMonitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.exceptions import ValidationError


def _pattern_stream(rng, pattern, pad=25, offset=9.0):
    return np.concatenate(
        [rng.normal(size=pad) + offset, pattern, rng.normal(size=pad) + offset]
    )


class TestRegistration:
    def test_duplicate_stream_raises(self):
        monitor = StreamMonitor()
        monitor.add_stream("s")
        with pytest.raises(ValidationError):
            monitor.add_stream("s")

    def test_duplicate_query_raises(self):
        monitor = StreamMonitor()
        monitor.add_query("q", [1.0], epsilon=1.0)
        with pytest.raises(ValidationError):
            monitor.add_query("q", [2.0], epsilon=1.0)

    def test_invalid_query_rejected_at_registration(self):
        monitor = StreamMonitor()
        with pytest.raises(ValidationError):
            monitor.add_query("bad", [], epsilon=1.0)

    def test_push_to_unknown_stream_raises(self):
        with pytest.raises(ValidationError):
            StreamMonitor().push("ghost", 1.0)

    def test_query_attaches_to_existing_and_new_streams(self):
        monitor = StreamMonitor()
        monitor.add_stream("a")
        monitor.add_query("q", [1.0, 2.0], epsilon=1.0)
        monitor.add_stream("b")
        assert monitor.matcher("a", "q") is not monitor.matcher("b", "q")

    def test_remove_query(self):
        monitor = StreamMonitor()
        monitor.add_stream("a")
        monitor.add_query("q", [1.0], epsilon=1.0)
        monitor.remove_query("q")
        with pytest.raises(ValidationError):
            monitor.matcher("a", "q")
        with pytest.raises(ValidationError):
            monitor.remove_query("q")


class TestDetection:
    def test_event_carries_stream_and_query(self, rng):
        pattern = rng.normal(size=6)
        monitor = StreamMonitor()
        monitor.add_stream("sensor")
        monitor.add_query("spike", pattern, epsilon=1e-9)
        events = monitor.push_many("sensor", _pattern_stream(rng, pattern))
        events += monitor.flush()
        assert len(events) == 1
        assert events[0].stream == "sensor"
        assert events[0].query == "spike"
        assert events[0].match.distance == pytest.approx(0.0, abs=1e-12)

    def test_streams_are_independent(self, rng):
        pattern = rng.normal(size=5)
        monitor = StreamMonitor()
        monitor.add_stream("hit")
        monitor.add_stream("miss")
        monitor.add_query("q", pattern, epsilon=1e-9)
        events = monitor.push_many("hit", _pattern_stream(rng, pattern))
        events += monitor.push_many("miss", rng.normal(size=60) + 9)
        events += monitor.flush()
        assert {e.stream for e in events} == {"hit"}

    def test_multiple_queries_one_stream(self, rng):
        p1 = rng.normal(size=5)
        p2 = rng.normal(size=7) + 4
        stream = np.concatenate(
            [rng.normal(size=20) + 9, p1, rng.normal(size=20) + 9, p2,
             rng.normal(size=20) + 9]
        )
        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query("first", p1, epsilon=1e-9)
        monitor.add_query("second", p2, epsilon=1e-9)
        events = monitor.push_many("s", stream)
        events += monitor.flush()
        assert {e.query for e in events} == {"first", "second"}

    def test_push_tick_feeds_several_streams(self, rng):
        monitor = StreamMonitor()
        monitor.add_stream("a")
        monitor.add_stream("b")
        monitor.add_query("q", [1.0, 2.0], epsilon=1e-9)
        monitor.push_tick({"a": 0.0, "b": 0.0})
        assert monitor.matcher("a", "q").tick == 1
        assert monitor.matcher("b", "q").tick == 1

    def test_callbacks_fire(self, rng):
        pattern = rng.normal(size=4)
        received = []
        monitor = StreamMonitor()
        monitor.subscribe(received.append)
        monitor.add_stream("s")
        monitor.add_query("q", pattern, epsilon=1e-9)
        monitor.push_many("s", _pattern_stream(rng, pattern))
        monitor.flush()
        assert len(received) == 1

    def test_history_records_events(self, rng):
        pattern = rng.normal(size=4)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query("q", pattern, epsilon=1e-9)
        monitor.push_many("s", _pattern_stream(rng, pattern))
        monitor.flush()
        assert len(monitor.history) == 1

    def test_vector_query(self, rng):
        pattern = rng.normal(size=(5, 3))
        stream = np.vstack(
            [rng.normal(size=(15, 3)) + 8, pattern, rng.normal(size=(15, 3)) + 8]
        )
        monitor = StreamMonitor()
        monitor.add_stream("mocap")
        monitor.add_query("walk", pattern, epsilon=1e-9, vector=True)
        events = monitor.push_many("mocap", stream)
        events += monitor.flush()
        assert len(events) == 1


def _busy_monitor(rng, n_queries=6, **monitor_kwargs):
    """A monitor whose stream matches every query several times."""
    monitor = StreamMonitor(**monitor_kwargs)
    monitor.add_stream("s")
    patterns = [rng.normal(size=rng.integers(3, 8)) for _ in range(n_queries)]
    for i, pattern in enumerate(patterns):
        monitor.add_query(f"q{i}", pattern, epsilon=1e-9)
    chunks = [rng.normal(size=10) + 9]
    for pattern in patterns * 2:
        chunks.append(pattern)
        chunks.append(rng.normal(size=10) + 9)
    return monitor, np.concatenate(chunks)


class TestHistoryRetention:
    def test_history_limit_keeps_most_recent(self, rng):
        monitor, stream = _busy_monitor(rng, history_limit=3)
        all_events = monitor.push_many("s", stream) + monitor.flush()
        assert len(all_events) > 3
        assert monitor.history == all_events[-3:]

    def test_keep_history_false_retains_nothing(self, rng):
        monitor, stream = _busy_monitor(rng, keep_history=False)
        events = monitor.push_many("s", stream) + monitor.flush()
        assert events
        assert monitor.history == []

    def test_history_limit_validated(self):
        with pytest.raises(ValidationError):
            StreamMonitor(history_limit=0)
        with pytest.raises(ValidationError):
            StreamMonitor(history_limit=-5)


class TestBatchedExecution:
    """push_many and the fused banks must be invisible optimisations."""

    def test_push_many_equals_per_value_push(self, rng):
        fast, stream = _busy_monitor(rng)
        rng2 = np.random.default_rng(20070415)
        slow, _ = _busy_monitor(rng2)
        got = fast.push_many("s", stream) + fast.flush()
        expected = [e for v in stream for e in slow.push("s", v)]
        expected += slow.flush()
        assert [(e.query, e.match) for e in got] == [
            (e.query, e.match) for e in expected
        ]

    def test_push_many_dispatches_once_per_batch(self, rng):
        monitor, stream = _busy_monitor(rng)
        seen = []
        monitor.subscribe(seen.append)
        events = monitor.push_many("s", stream)
        assert seen == events  # every event exactly once, batch order

    def test_matcher_access_stays_coherent_mid_stream(self, rng):
        # Inspecting (or even stepping) a matcher between pushes must see
        # and produce exactly the per-query state, banks or no banks.
        fast, stream = _busy_monitor(rng)
        rng2 = np.random.default_rng(20070415)
        slow, _ = _busy_monitor(rng2)
        cut = len(stream) // 2
        got = fast.push_many("s", stream[:cut])
        expected = [e for v in stream[:cut] for e in slow.push("s", v)]
        for name in fast.queries:
            assert fast.matcher("s", name).tick == slow.matcher("s", name).tick
        got += fast.push_many("s", stream[cut:]) + fast.flush()
        expected += [e for v in stream[cut:] for e in slow.push("s", v)]
        expected += slow.flush()
        assert [(e.query, e.match) for e in got] == [
            (e.query, e.match) for e in expected
        ]

    def test_mixed_modes_share_a_stream(self, rng):
        # Bankable plain queries alongside a path-recording one: the
        # latter takes the per-query path but events still interleave
        # in registration order.
        pattern = rng.normal(size=5)
        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_query("plain_a", pattern, epsilon=1e-9)
        monitor.add_query("pathy", pattern, epsilon=1e-9, record_path=True)
        monitor.add_query("plain_b", pattern, epsilon=1e-9)
        events = monitor.push_many("s", _pattern_stream(rng, pattern))
        events += monitor.flush()
        assert [e.query for e in events] == ["plain_a", "pathy", "plain_b"]
        assert events[1].match.path is not None
