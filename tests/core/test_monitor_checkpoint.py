"""Whole-monitor checkpoint/restore tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.exceptions import ValidationError


def _events(monitor):
    return [
        (e.stream, e.query, e.match.start, e.match.end)
        for e in monitor.flush()
    ]


class TestMonitorRoundTrip:
    def test_resume_mid_stream(self, rng):
        pattern_a = rng.normal(size=5)
        pattern_b = rng.normal(size=7) + 3
        stream = np.concatenate(
            [
                rng.normal(size=30) + 9,
                pattern_a,
                rng.normal(size=30) + 9,
                pattern_b,
                rng.normal(size=30) + 9,
            ]
        )

        def fresh():
            monitor = StreamMonitor()
            monitor.add_stream("s")
            monitor.add_query("a", pattern_a, epsilon=1e-9)
            monitor.add_query("b", pattern_b, epsilon=1e-9)
            return monitor

        baseline = fresh()
        base_events = [
            (e.stream, e.query, e.match.start, e.match.end)
            for e in baseline.push_many("s", stream)
        ] + _events(baseline)

        first = fresh()
        cut = 40  # mid-first-pattern region
        head = [
            (e.stream, e.query, e.match.start, e.match.end)
            for e in first.push_many("s", stream[:cut])
        ]
        blob = json.dumps(save_monitor(first))  # survives a process hop
        restored = load_monitor(json.loads(blob))
        tail = [
            (e.stream, e.query, e.match.start, e.match.end)
            for e in restored.push_many("s", stream[cut:])
        ] + _events(restored)
        assert head + tail == base_events

    def test_streams_and_queries_preserved(self, rng):
        monitor = StreamMonitor()
        monitor.add_stream("x")
        monitor.add_stream("y")
        monitor.add_query("q", rng.normal(size=4), epsilon=2.0)
        restored = load_monitor(save_monitor(monitor))
        assert sorted(restored.streams) == ["x", "y"]
        assert restored.queries == ["q"]

    def test_vector_query_round_trip(self, rng):
        monitor = StreamMonitor()
        monitor.add_stream("mocap")
        monitor.add_query(
            "walk", rng.normal(size=(5, 3)), epsilon=5.0, vector=True
        )
        monitor.push("mocap", rng.normal(size=3))
        restored = load_monitor(save_monitor(monitor))
        assert restored.matcher("mocap", "walk").tick == 1

    def test_rejects_non_monitor(self):
        with pytest.raises(ValidationError):
            save_monitor(object())

    def test_rejects_bad_version(self, rng):
        monitor = StreamMonitor()
        state = save_monitor(monitor)
        state["format_version"] = -1
        with pytest.raises(ValidationError):
            load_monitor(state)
