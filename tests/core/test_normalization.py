"""Unit tests for the streaming z-normalisation wrapper.

Scope note: global/EWM z-normalisation rescales the stream by its
*history* statistics and the query by its own, so the two agree when the
stream's scale matches the query's (level shifts of any size are
absorbed; a scale mismatch between pattern and background is not — that
would need per-window normalisation, which cannot be done in constant
space).  The tests below exercise exactly that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NormalizedSpring, Spring
from repro.exceptions import ValidationError


def _scale_matched_stream(rng, query, level, pad=150, pattern_noise=0.15):
    """Background with the query's own std, pattern planted, level-shifted."""
    sigma = float(np.std(query))
    before = rng.normal(0, sigma, pad)
    after = rng.normal(0, sigma, pad)
    planted = query + rng.normal(0, pattern_noise, query.shape[0])
    return np.concatenate([before, planted, after]) + level


class TestConstruction:
    def test_rejects_constant_query(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([2.0, 2.0, 2.0])

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([1.0, 2.0], mode="window")

    def test_rejects_bad_halflife(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([1.0, 2.0], mode="ewm", halflife=0.0)


class TestMatching:
    def test_finds_pattern_despite_huge_level_shift(self, rng):
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0)

        # Raw SPRING is hopeless: every tick costs ~1000^2.
        raw = Spring(query, epsilon=50.0)
        raw_matches = raw.extend(stream)
        assert raw_matches == [] and raw.flush() is None

        matcher = NormalizedSpring(query, epsilon=4.0, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        assert matches, "normalised matcher must absorb the level shift"
        assert min(m.distance for m in matches) < 4.0

    def test_positions_are_in_raw_coordinates(self, rng):
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0, pad=150)
        matcher = NormalizedSpring(query, epsilon=4.0, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        best = min(matches, key=lambda m: m.distance)
        # Pattern occupies raw ticks 151..214; tolerate noisy edges.
        assert abs(best.start - 151) <= 10
        assert abs(best.end - 214) <= 10

    def test_separation_from_background(self, rng):
        """The planted pattern scores well below any background local
        optimum — the property a threshold relies on."""
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0)
        matcher = NormalizedSpring(query, epsilon=np.inf, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        in_region = [m for m in matches if 140 <= m.start <= 220]
        background = [m for m in matches if not (130 <= m.start <= 220)]
        assert in_region and background
        assert min(m.distance for m in in_region) * 3 < min(
            m.distance for m in background
        )

    def test_warmup_swallows_initial_ticks(self, rng):
        matcher = NormalizedSpring([0.0, 1.0], warmup=10)
        for _ in range(10):
            assert matcher.step(float(rng.normal())) is None
        assert matcher.tick == 10
        assert matcher.spring.tick == 0

    def test_ewm_adapts_to_level_jump_where_global_fails(self, rng):
        """After a +50 level jump, EWM stats re-converge and the pattern
        planted post-jump is found; global stats stay contaminated by
        the pre-jump history and miss it."""
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        sigma = float(query.std())
        pre = rng.normal(0, sigma, 200)
        post = np.concatenate(
            [
                rng.normal(0, sigma, 400),
                query + rng.normal(0, 0.15, 64),
                rng.normal(0, sigma, 100),
            ]
        ) + 50.0
        stream = np.concatenate([pre, post])  # pattern at ticks 601..664

        ewm = NormalizedSpring(
            query, epsilon=4.0, mode="ewm", halflife=30.0, warmup=60
        )
        ewm_matches = ewm.extend(stream)
        final = ewm.flush()
        if final:
            ewm_matches.append(final)
        assert any(560 <= m.start <= 660 for m in ewm_matches)

        global_matcher = NormalizedSpring(
            query, epsilon=4.0, mode="global", warmup=60
        )
        global_matches = global_matcher.extend(stream)
        final = global_matcher.flush()
        if final:
            global_matches.append(final)
        assert not any(560 <= m.start <= 660 for m in global_matches)

    def test_nan_passthrough(self, rng):
        matcher = NormalizedSpring([0.0, 1.0, 0.0], warmup=5)
        values = list(rng.normal(size=20))
        values[10] = float("nan")
        matcher.extend(values)
        assert matcher.tick == 20
