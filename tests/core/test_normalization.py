"""Unit tests for the streaming z-normalisation wrapper.

Scope note: global/EWM z-normalisation rescales the stream by its
*history* statistics and the query by its own, so the two agree when the
stream's scale matches the query's (level shifts of any size are
absorbed; a scale mismatch between pattern and background is not — that
would need per-window normalisation, which cannot be done in constant
space).  The tests below exercise exactly that contract.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NormalizedSpring, Spring, ZNormalize
from repro.core.checkpoint import load_state, save_state
from repro.exceptions import StreamValueError, ValidationError


def _scale_matched_stream(rng, query, level, pad=150, pattern_noise=0.15):
    """Background with the query's own std, pattern planted, level-shifted."""
    sigma = float(np.std(query))
    before = rng.normal(0, sigma, pad)
    after = rng.normal(0, sigma, pad)
    planted = query + rng.normal(0, pattern_noise, query.shape[0])
    return np.concatenate([before, planted, after]) + level


class TestConstruction:
    def test_rejects_constant_query(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([2.0, 2.0, 2.0])

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([1.0, 2.0], mode="window")

    def test_rejects_bad_halflife(self):
        with pytest.raises(ValidationError):
            NormalizedSpring([1.0, 2.0], mode="ewm", halflife=0.0)

    def test_rejects_bad_halflife_in_global_mode_too(self):
        # Regression: global mode used to accept (and round-trip) a
        # non-positive halflife, blowing up only if later switched to ewm.
        with pytest.raises(ValidationError, match="halflife"):
            ZNormalize(mode="global", halflife=-5.0)
        with pytest.raises(ValidationError, match="halflife"):
            NormalizedSpring([1.0, 2.0], mode="global", halflife=0.0)

    def test_rejects_warmup_below_two(self):
        # Regression: warmup < 2 used to be silently coerced up to 2.
        for bad in (1, 0, -3):
            with pytest.raises(ValidationError, match="warmup"):
                ZNormalize(warmup=bad)
        with pytest.raises(ValidationError, match="warmup"):
            NormalizedSpring([1.0, 2.0], warmup=1)

    def test_rejects_bad_missing_policy(self):
        with pytest.raises(ValidationError, match="missing"):
            ZNormalize(missing="ignore")

    def test_config_dict_round_trip(self):
        transform = ZNormalize(
            mode="ewm", halflife=25.0, warmup=4, missing="error"
        )
        clone = ZNormalize.from_config(transform.config_dict())
        assert clone.config_dict() == transform.config_dict()
        assert clone.config_dict()["missing"] == "error"
        # The round-tripped config re-validates: poisoning the payload
        # cannot smuggle an invalid transform past the constructor.
        bad = dict(transform.config_dict(), halflife=-1.0)
        with pytest.raises(ValidationError):
            ZNormalize.from_config(bad)
        bad = dict(transform.config_dict(), warmup=1)
        with pytest.raises(ValidationError):
            ZNormalize.from_config(bad)


class TestMatching:
    def test_finds_pattern_despite_huge_level_shift(self, rng):
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0)

        # Raw SPRING is hopeless: every tick costs ~1000^2.
        raw = Spring(query, epsilon=50.0)
        raw_matches = raw.extend(stream)
        assert raw_matches == [] and raw.flush() is None

        matcher = NormalizedSpring(query, epsilon=4.0, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        assert matches, "normalised matcher must absorb the level shift"
        assert min(m.distance for m in matches) < 4.0

    def test_positions_are_in_raw_coordinates(self, rng):
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0, pad=150)
        matcher = NormalizedSpring(query, epsilon=4.0, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        best = min(matches, key=lambda m: m.distance)
        # Pattern occupies raw ticks 151..214; tolerate noisy edges.
        assert abs(best.start - 151) <= 10
        assert abs(best.end - 214) <= 10

    def test_separation_from_background(self, rng):
        """The planted pattern scores well below any background local
        optimum — the property a threshold relies on."""
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        stream = _scale_matched_stream(rng, query, level=1000.0)
        matcher = NormalizedSpring(query, epsilon=np.inf, warmup=60)
        matches = matcher.extend(stream)
        final = matcher.flush()
        if final:
            matches.append(final)
        in_region = [m for m in matches if 140 <= m.start <= 220]
        background = [m for m in matches if not (130 <= m.start <= 220)]
        assert in_region and background
        assert min(m.distance for m in in_region) * 3 < min(
            m.distance for m in background
        )

    def test_warmup_swallows_initial_ticks(self, rng):
        matcher = NormalizedSpring([0.0, 1.0], warmup=10)
        for _ in range(10):
            assert matcher.step(float(rng.normal())) is None
        assert matcher.tick == 10
        assert matcher.spring.tick == 0

    def test_ewm_adapts_to_level_jump_where_global_fails(self, rng):
        """After a +50 level jump, EWM stats re-converge and the pattern
        planted post-jump is found; global stats stay contaminated by
        the pre-jump history and miss it."""
        query = np.sin(np.linspace(0, 4 * np.pi, 64)) * 2.0
        sigma = float(query.std())
        pre = rng.normal(0, sigma, 200)
        post = np.concatenate(
            [
                rng.normal(0, sigma, 400),
                query + rng.normal(0, 0.15, 64),
                rng.normal(0, sigma, 100),
            ]
        ) + 50.0
        stream = np.concatenate([pre, post])  # pattern at ticks 601..664

        ewm = NormalizedSpring(
            query, epsilon=4.0, mode="ewm", halflife=30.0, warmup=60
        )
        ewm_matches = ewm.extend(stream)
        final = ewm.flush()
        if final:
            ewm_matches.append(final)
        assert any(560 <= m.start <= 660 for m in ewm_matches)

        global_matcher = NormalizedSpring(
            query, epsilon=4.0, mode="global", warmup=60
        )
        global_matches = global_matcher.extend(stream)
        final = global_matcher.flush()
        if final:
            global_matches.append(final)
        assert not any(560 <= m.start <= 660 for m in global_matches)

    def test_nan_passthrough(self, rng):
        matcher = NormalizedSpring([0.0, 1.0, 0.0], warmup=5)
        values = list(rng.normal(size=20))
        values[10] = float("nan")
        matcher.extend(values)
        assert matcher.tick == 20


class TestNonFinitePolicy:
    """Regression suite: inf must never touch the running statistics.

    ``ZNormalize.forward`` used to screen only ``isnan``, so a single
    ±inf reading was pushed into ``RunningStats``/``EwmStats`` and
    permanently poisoned mean/std — every later output became NaN.  Now
    non-finite values follow the unified ``repro.core.missing`` policy:
    NaN is missing (skip or error), inf is corrupt and always raises,
    before any state is modified.
    """

    @pytest.mark.parametrize("mode", ["global", "ewm"])
    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_inf_raises_and_leaves_statistics_untouched(self, mode, sign):
        transform = ZNormalize(mode=mode, halflife=10.0, warmup=2)
        for value in (1.0, 2.0, 3.0):
            transform.forward(value)
        before = transform.state_dict()
        with pytest.raises(StreamValueError, match="tick 4 is infinite"):
            transform.forward(sign * float("inf"))
        assert transform.state_dict() == before

    def test_inf_mid_stream_does_not_poison_later_outputs(self, rng):
        """The original symptom: all outputs after an inf became NaN."""
        poisoned = ZNormalize(warmup=2)
        replica = ZNormalize(warmup=2)
        values = [float(v) for v in rng.normal(size=12)]
        for value in values[:6]:
            assert poisoned.forward(value) == replica.forward(value)
        with pytest.raises(StreamValueError):
            poisoned.forward(float("inf"))
        # The rejected reading is as if it never arrived: both replicas
        # continue in lockstep and every output stays finite.
        for value in values[6:]:
            got = poisoned.forward(value)
            assert got == replica.forward(value)
            assert np.isfinite(got)

    def test_inf_mid_stream_through_normalized_spring(self, rng):
        matcher = NormalizedSpring([0.0, 1.0, 0.0], warmup=3)
        for value in rng.normal(size=8):
            matcher.step(float(value))
        with pytest.raises(StreamValueError):
            matcher.step(float("inf"))
        # The rejected value advanced neither clock...
        assert matcher.tick == 8
        assert matcher.spring.tick == 5
        # ...and the stream continues with clean statistics.
        for value in rng.normal(size=8):
            matcher.step(float(value))
        assert matcher.tick == 16
        assert np.isfinite(matcher.transform.stats.mean)

    def test_nan_error_policy_raises_before_counting(self):
        transform = ZNormalize(warmup=2, missing="error")
        transform.forward(1.0)
        with pytest.raises(StreamValueError, match="tick 2 is NaN"):
            transform.forward(float("nan"))
        assert transform.state_dict()["seen"] == 1

    def test_nan_skip_still_never_contributes_to_statistics(self):
        transform = ZNormalize(warmup=2)
        for value in (1.0, 3.0):
            transform.forward(value)
        before = transform.stats.state_dict()
        assert np.isnan(transform.forward(float("nan")))
        assert transform.stats.state_dict() == before


class TestCoordinateContract:
    """Pin ``map_match``'s fixed warm-up shift against NaN placement.

    The contract: exactly the first ``warmup`` raw ticks are swallowed,
    *regardless* of where NaNs fall (a NaN during warm-up counts toward
    ``_seen`` and is swallowed like any warm-up tick; a NaN after
    warm-up passes through to the inner matcher).  Hence inner tick =
    raw tick − warmup always, and the fixed shift in ``map_match`` is
    exact — including across a checkpoint resume mid-warm-up.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.integers(-8192, 8192).map(lambda k: k / 1024.0),
                st.just(float("nan")),
            ),
            min_size=0,
            max_size=30,
        ),
        warmup=st.integers(min_value=2, max_value=8),
    )
    def test_inner_clock_is_raw_clock_minus_warmup(self, values, warmup):
        matcher = NormalizedSpring(
            [0.0, 1.0, 0.0], epsilon=np.inf, warmup=warmup
        )
        for raw_tick, value in enumerate(values, start=1):
            matcher.step(value)
            assert matcher.tick == raw_tick
            assert matcher.spring.tick == max(0, raw_tick - warmup)

    @settings(max_examples=30, deadline=None)
    @given(
        prefix=st.lists(st.booleans(), min_size=0, max_size=6),
        suffix_nans=st.sets(st.integers(0, 19), max_size=5),
        warmup=st.integers(min_value=2, max_value=6),
    )
    def test_positions_shift_by_warmup_for_any_nan_placement(
        self, prefix, suffix_nans, warmup
    ):
        """Differential: streaming matcher == transform-then-match
        composition, with NaNs both before and after the warm-up edge."""
        query = np.array([0.0, 2.0, -1.0, 1.0])
        rng = np.random.default_rng(42)
        # prefix booleans choose NaN / value for the warm-up region;
        # suffix_nans knock out post-warm-up ticks.
        head = [
            float("nan") if is_nan else float(rng.normal())
            for is_nan in prefix
        ]
        body = list(rng.normal(scale=0.3, size=20))
        body[5:9] = [float(v) for v in query]
        for index in suffix_nans:
            body[index] = float("nan")
        stream = head + body

        matcher = NormalizedSpring(query, epsilon=2.0, warmup=warmup)
        actual = matcher.extend(stream)
        final = matcher.flush()
        if final is not None:
            actual.append(final)

        replica = ZNormalize(mode="global", warmup=warmup)
        forwarded = [
            out
            for value in stream
            if (out := replica.forward(value)) is not None
        ]
        inner = Spring(replica.fit_query(query), epsilon=2.0)
        expected = inner.extend(forwarded)
        final = inner.flush()
        if final is not None:
            expected.append(final)

        assert [(m.start, m.end) for m in actual] == [
            (m.start + warmup, m.end + warmup) for m in expected
        ]

    def test_mid_warmup_checkpoint_resume_is_byte_identical(self, rng):
        query = np.array([0.0, 2.0, -1.0, 1.0])
        values = [float(v) for v in rng.normal(size=30)]
        values[2] = float("nan")  # a swallowed-and-counted warm-up NaN
        values[11:15] = [float(v) for v in query]

        reference = NormalizedSpring(query, epsilon=2.0, warmup=6)
        expected = reference.extend(values)
        final = reference.flush()
        if final is not None:
            expected.append(final)
        expected_keys = [
            (m.start, m.end, m.distance, m.output_time) for m in expected
        ]

        for cut in (1, 3, 5):  # all strictly inside the warm-up
            first = NormalizedSpring(query, epsilon=2.0, warmup=6)
            first.extend(values[:cut])
            blob = json.dumps(save_state(first))
            restored = load_state(json.loads(blob))
            assert json.dumps(save_state(restored)) == blob
            tail = restored.extend(values[cut:])
            final = restored.flush()
            if final is not None:
                tail.append(final)
            got = [
                (m.start, m.end, m.distance, m.output_time) for m in tail
            ]
            assert got == expected_keys, f"divergence resuming at {cut}"
