"""Cell-for-cell reproduction of the paper's worked example (Figure 5).

X = (5, 12, 6, 10, 6, 5, 13), Y = (11, 6, 9, 4), epsilon = 15.  The
expected distance/start matrices below are copied from Figure 5 of the
paper; the narrative checkpoints come from Example 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Spring

# Figure 5, transcribed: entry [t-1][i-1] = (d(t, i), s(t, i)).
FIGURE5_DISTANCES = [
    [36, 37, 53, 54],
    [1, 37, 46, 110],
    [25, 1, 10, 14],
    [1, 17, 2, 38],
    [25, 1, 10, 6],
    [36, 2, 17, 7],
    [4, 51, 18, 88],
]
FIGURE5_STARTS = [
    [1, 1, 1, 1],
    [2, 2, 2, 2],
    [3, 2, 2, 2],
    [4, 4, 2, 2],
    [5, 4, 4, 2],
    [6, 4, 4, 2],
    [7, 4, 4, 2],
]

X = [5, 12, 6, 10, 6, 5, 13]
Y = [11, 6, 9, 4]


@pytest.mark.parametrize("use_reference", [False, True])
class TestFigure5:
    def test_distance_and_start_columns(self, use_reference):
        # Columns are checked through t = 6; at t = 7 the disjoint
        # report fires and resets the column (verified separately below;
        # the full raw 7x4 matrix is checked offline in
        # tests/dtw/test_matrix.py::test_paper_figure5_matrix).
        spring = Spring(Y, epsilon=15, use_reference=use_reference)
        for t, value in enumerate(X[:6], start=1):
            spring.step(value)
            np.testing.assert_allclose(
                spring.current_distances,
                FIGURE5_DISTANCES[t - 1],
                err_msg=f"distance column at t={t}",
            )
            np.testing.assert_array_equal(
                spring.current_starts,
                FIGURE5_STARTS[t - 1],
                err_msg=f"start column at t={t}",
            )
        spring.step(X[6])
        np.testing.assert_array_equal(
            spring.current_starts, FIGURE5_STARTS[6]
        )

    def test_example1_report(self, use_reference):
        """Example 1: report X[2:5] (captured at t=5) at time t=7."""
        spring = Spring(Y, epsilon=15, use_reference=use_reference)
        reports = []
        for value in X:
            match = spring.step(value)
            if match is not None:
                reports.append(match)
        assert len(reports) == 1
        match = reports[0]
        assert (match.start, match.end) == (2, 5)
        assert match.distance == pytest.approx(6.0)
        assert match.output_time == 7

    def test_candidate_not_reported_prematurely(self, use_reference):
        """At t=4, X[2:3] (d=14) must be held: d(4,3)=2 can undercut it."""
        spring = Spring(Y, epsilon=15, use_reference=use_reference)
        for value in X[:4]:
            assert spring.step(value) is None
        assert spring.has_pending

    def test_d71_not_reset_after_report(self, use_reference):
        """'Because subsequences starting from t=7 may be candidates for
        the next group, we do not initialize d(7, 1).'"""
        spring = Spring(Y, epsilon=15, use_reference=use_reference)
        for value in X:
            spring.step(value)
        distances = spring.current_distances
        assert distances[0] == pytest.approx(4.0)  # kept
        assert np.isinf(distances[1:]).all()  # reset (starts <= 5)

    def test_best_match_tracks_optimum(self, use_reference):
        spring = Spring(Y, epsilon=15, use_reference=use_reference)
        for value in X:
            spring.step(value)
        best = spring.best_match
        assert (best.start, best.end) == (2, 5)
        assert best.distance == pytest.approx(6.0)
