"""Protocol conformance: every registered matcher honours the Matcher API.

The layered architecture's load-bearing claim is that the monitor, the
execution engines, the runtime, and the CLI can treat every variant
through the :class:`~repro.core.protocol.Matcher` protocol alone.  This
suite parametrises over the full kind registry, so a newly registered
matcher is covered automatically (and a kind that forgets to register
its checkpoint class fails here, not in production).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Capabilities, Matcher, build_matcher, matcher_kinds
from repro.core.checkpoint import load_state, registered_matchers, save_state

# Per-kind constructor kwargs; every kind in the registry must appear.
KIND_KWARGS = {
    "spring": {"epsilon": 2.0},
    "constrained": {"epsilon": 2.0, "max_stretch": 2.0},
    "topk": {"k": 3, "epsilon": 6.0},
    "vector": {"epsilon": 6.0},
    "normalized": {"epsilon": 2.0, "warmup": 4},
    "cascade": {"epsilon": 2.0, "reduction": 2},
    "dynnorm": {"epsilon": 0.5, "min_length": 4, "max_length": 8},
}

KINDS = sorted(KIND_KWARGS)


def _query(kind: str) -> np.ndarray:
    if kind == "vector":
        return np.array([[0.0, 1.0], [2.0, -1.0], [0.0, 0.5], [1.0, 0.0]])
    return np.array([0.0, 2.0, -1.0, 1.0])


def _stream(kind: str, rng: np.random.Generator, n: int = 80) -> list:
    """Noise with the query embedded twice so matches actually occur."""
    query = _query(kind)
    if kind == "vector":
        values = rng.normal(scale=0.3, size=(n, query.shape[1]))
        values[20:24] = query
        values[55:59] = query
        return [row for row in values]
    values = rng.normal(scale=0.3, size=n)
    values[20:24] = query
    values[55:59] = query
    return [float(v) for v in values]


def _build(kind: str):
    return build_matcher(kind, _query(kind), **KIND_KWARGS[kind])


def _keys(matches):
    return [
        (m.start, m.end, m.distance, m.output_time)
        for m in matches
        if m is not None
    ]


def test_every_registered_kind_is_covered():
    assert set(matcher_kinds()) == set(KINDS)


@pytest.mark.parametrize("kind", KINDS)
class TestProtocolConformance:
    def test_satisfies_matcher_protocol(self, kind):
        matcher = _build(kind)
        assert isinstance(matcher, Matcher)

    def test_declares_capabilities(self, kind):
        matcher = _build(kind)
        caps = matcher.capabilities()
        assert isinstance(caps, Capabilities)
        assert caps.kind in ("scalar", "vector")
        assert (caps.kind == "vector") == (kind == "vector")

    def test_query_length_exposed(self, kind):
        matcher = _build(kind)
        assert matcher.m == len(_query(kind))
        assert matcher.tick == 0

    def test_step_counts_ticks(self, kind, rng):
        matcher = _build(kind)
        stream = _stream(kind, rng)
        for value in stream:
            matcher.step(value)
        assert matcher.tick == len(stream)

    def test_extend_equals_step_loop(self, kind, rng):
        stream = _stream(kind, rng)
        stepped = _build(kind)
        step_matches = [m for v in stream if (m := stepped.step(v))]
        step_matches += [stepped.flush()]
        extended = _build(kind)
        extend_matches = list(extended.extend(stream))
        extend_matches += [extended.flush()]
        assert _keys(step_matches) == _keys(extend_matches)
        assert _keys(step_matches)  # the stream embeds the query: non-empty

    def test_flush_is_safe_to_repeat(self, kind, rng):
        matcher = _build(kind)
        matcher.extend(_stream(kind, rng))
        matcher.flush()
        assert matcher.flush() is None

    def test_checkpoint_class_is_registered(self, kind):
        matcher = _build(kind)
        assert type(matcher).__name__ in registered_matchers()

    def test_checkpoint_roundtrip_mid_stream(self, kind, rng):
        stream = _stream(kind, rng)
        cut = 37  # mid-way, with a pending partial match in the kernel

        reference = _build(kind)
        expected = [m for v in stream if (m := reference.step(v))]
        expected += [reference.flush()]

        first = _build(kind)
        head = [m for v in stream[:cut] if (m := first.step(v))]
        blob = json.dumps(save_state(first))  # survives a process hop
        restored = load_state(json.loads(blob))
        assert restored.tick == first.tick
        tail = [m for v in stream[cut:] if (m := restored.step(v))]
        tail += [restored.flush()]
        assert _keys(head) + _keys(tail) == _keys(expected)
