"""Unit tests for the lower-bound admission cascade (park lifecycle).

The parity *properties* live in ``tests/properties/test_prune_parity``;
this module pins the cascade's mechanics deterministically: when
queries park and wake, what the counters count, how ``prune_stats``
aggregates, how parked state round-trips through checkpoints, and the
validation surface (bad capacities, inert distances, restore into a
pruning-less engine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FusedSpring, QueryBank, Spring, StreamMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.exceptions import CheckpointError, ValidationError

QUERIES = [[100.0, 101.0, 99.5], [100.5, 99.0, 100.0]]
EPSILON = 4.0
WARM = [100.0, 100.5, 99.8]  # arms best_d <= epsilon for both queries


def _pruned(prune_buffer=8, **kwargs):
    return FusedSpring(
        QueryBank(QUERIES, epsilons=EPSILON),
        prune_buffer=prune_buffer,
        **kwargs,
    )


class TestParkLifecycle:
    def test_queries_start_hot(self):
        engine = _pruned()
        assert not engine.parked.any()
        assert engine.pruned_ticks == 0

    def test_cold_values_alone_never_park(self):
        """Without an armed best-so-far the cascade must not engage."""
        engine = _pruned()
        for _ in range(20):
            engine.step(0.0)
        assert not engine.parked.any()
        assert engine.pruned_ticks == 0

    def test_warm_then_cold_parks(self):
        engine = _pruned()
        for value in WARM:
            engine.step(value)
        engine.step(0.0)  # reports/settles, arms parking
        engine.step(0.0)
        assert engine.parked.all()
        before = engine.pruned_ticks
        engine.step(0.0)
        assert engine.pruned_ticks == before + len(QUERIES)

    def test_parked_ticks_freeze_but_stream_ticks_advance(self):
        engine = _pruned()
        stream = WARM + [0.0] * 10
        for value in stream:
            engine.step(value)
        assert engine.parked.all()
        assert engine._ticks.max() < len(stream)
        np.testing.assert_array_equal(
            engine.stream_ticks, np.full(len(QUERIES), len(stream))
        )

    def test_warm_value_wakes_with_replay(self):
        engine = _pruned(prune_buffer=64)
        stream = WARM + [0.0] * 6
        for value in stream:
            engine.step(value)
        assert engine.parked.all()
        engine.step(100.0)
        assert not engine.parked.any()
        assert engine.replays > 0
        assert engine.replayed_ticks > 0
        np.testing.assert_array_equal(
            engine._ticks, np.full(len(QUERIES), len(stream) + 1)
        )

    def test_deep_wake_when_span_outgrows_buffer(self):
        engine = _pruned(prune_buffer=2)
        stream = WARM + [0.0] * 20
        for value in stream:
            engine.step(value)
        engine.step(100.0)
        assert not engine.parked.any()
        # span outgrew the 2-slot buffer: no replay happened
        assert engine.replays == 0
        np.testing.assert_array_equal(
            engine._ticks, np.full(len(QUERIES), len(stream) + 1)
        )

    def test_nan_never_wakes(self):
        engine = _pruned()
        for value in WARM + [0.0, 0.0]:
            engine.step(value)
        assert engine.parked.all()
        engine.step(float("nan"))
        assert engine.parked.all()

    def test_catch_up_all_is_idempotent(self):
        engine = _pruned()
        for value in WARM + [0.0] * 5:
            engine.step(value)
        engine.catch_up_all()
        ticks = engine._ticks.copy()
        engine.catch_up_all()
        np.testing.assert_array_equal(engine._ticks, ticks)


class TestCountersAndStats:
    def test_pruned_ticks_counts_skipped_query_ticks(self):
        engine = _pruned()
        for value in WARM + [0.0, 0.0]:
            engine.step(value)
        assert engine.parked.all()
        base = engine.pruned_ticks
        for _ in range(7):
            engine.step(0.0)
        assert engine.pruned_ticks == base + 7 * len(QUERIES)

    def test_monitor_prune_stats_aggregates_across_syncs(self):
        monitor = StreamMonitor(prune=True, prune_buffer=64)
        monitor.add_stream("s")
        for i, query in enumerate(QUERIES):
            monitor.add_query(f"q{i}", query, epsilon=EPSILON)
        for value in WARM + [0.0] * 10:
            monitor.push("s", value)
        stats = monitor.prune_stats("s")
        assert stats["pruned_ticks"] > 0
        # accessing a matcher syncs (catches up) and folds counters;
        # the totals must survive the plan rebuild
        monitor.matcher("s", "q0")
        after = monitor.prune_stats("s")
        assert after["pruned_ticks"] >= stats["pruned_ticks"]
        assert after["replayed_ticks"] > 0  # the sync replayed the span

    def test_prune_stats_unknown_stream(self):
        monitor = StreamMonitor()
        with pytest.raises(ValidationError):
            monitor.prune_stats("nope")

    def test_prune_stats_zero_when_disabled(self):
        monitor = StreamMonitor(prune=False)
        monitor.add_stream("s")
        for i, query in enumerate(QUERIES):
            monitor.add_query(f"q{i}", query, epsilon=EPSILON)
        for value in WARM + [0.0] * 10:
            monitor.push("s", value)
        assert monitor.prune_stats("s") == {
            "pruned_ticks": 0,
            "replays": 0,
            "replayed_ticks": 0,
            "groups_certified": 0,
            "group_descents": 0,
        }

    def test_metrics_expose_prune_counters(self):
        monitor = StreamMonitor(prune=True, prune_buffer=8)
        registry = monitor.enable_metrics()
        monitor.add_stream("s")
        for i, query in enumerate(QUERIES):
            monitor.add_query(f"q{i}", query, epsilon=EPSILON)
        for value in WARM + [0.0] * 10:
            monitor.push("s", value)
        snapshot = registry.snapshot()

        def value(name):
            series = snapshot[name]["series"]
            return {
                tuple(sorted(entry["labels"].items())): entry["value"]
                for entry in series
            }[(("stream", "s"),)]

        assert value("spring_pruned_ticks_total") > 0
        assert value("spring_replays_total") >= 0


class TestValidationSurface:
    def test_bad_buffer_capacity_rejected(self):
        with pytest.raises(ValidationError):
            _pruned(prune_buffer=0)
        with pytest.raises(ValidationError):
            StreamMonitor(prune_buffer=0)

    def test_custom_distance_is_inert_not_an_error(self):
        """No corridor bound exists for custom callables: run unpruned."""
        engine = FusedSpring(
            QueryBank(
                QUERIES,
                epsilons=EPSILON,
                local_distance=lambda x, y: ((x - y) ** 4).sum(axis=-1),
            ),
            prune_buffer=8,
        )
        for value in WARM + [0.0] * 10:
            engine.step(value)
        assert not engine.parked.any()
        assert engine.pruned_ticks == 0
        assert engine.prune_state_dict() is None

    def test_absolute_distance_is_prunable(self):
        engine = FusedSpring(
            QueryBank(QUERIES, epsilons=EPSILON, local_distance="absolute"),
            prune_buffer=8,
        )
        plain = FusedSpring(
            QueryBank(QUERIES, epsilons=EPSILON, local_distance="absolute")
        )
        stream = WARM + [50.0] * 10
        got = []
        expected = []
        for value in stream:
            got.extend(engine.step(value))
            expected.extend(plain.step(value))
        assert engine.parked.all()
        assert [
            (qi, m.start, m.end, m.distance) for qi, m in got
        ] == [(qi, m.start, m.end, m.distance) for qi, m in expected]

    def test_restore_into_unpruned_engine_rejected(self):
        donor = _pruned()
        for value in WARM + [0.0] * 5:
            donor.step(value)
        state = donor.prune_state_dict()
        receiver = FusedSpring(QueryBank(QUERIES, epsilons=EPSILON))
        with pytest.raises(ValidationError):
            receiver.restore_prune_state(state)
        # None is always accepted (a checkpoint with no pruning payload)
        receiver.restore_prune_state(None)


class TestCheckpointRoundTrip:
    def _monitor(self, prune=True, prune_buffer=8):
        monitor = StreamMonitor(prune=prune, prune_buffer=prune_buffer)
        monitor.add_stream("s")
        for i, query in enumerate(QUERIES):
            monitor.add_query(f"q{i}", query, epsilon=EPSILON)
        return monitor

    def _sig(self, events):
        return [
            (e.query, e.match.start, e.match.end, e.match.distance,
             e.match.output_time)
            for e in events
        ]

    @pytest.mark.parametrize("resume_prune", [True, False])
    def test_mid_park_snapshot_resumes_exactly(self, resume_prune):
        stream = WARM + [0.0] * 12 + [100.0, 100.5, 99.8, 0.0, 0.0]
        cut = 9  # mid-park: inside the first cold span

        reference = self._monitor()
        expected = []
        for value in stream:
            expected.extend(reference.push("s", value))

        first = self._monitor()
        events = []
        for value in stream[:cut]:
            events.extend(first.push("s", value))
        payload = save_monitor(first)
        assert "prune" in payload  # the snapshot really was mid-park
        restored = load_monitor(payload, prune=resume_prune, prune_buffer=8)
        for value in stream[cut:]:
            events.extend(restored.push("s", value))
        assert self._sig(events) == self._sig(expected)

    def test_snapshot_is_non_destructive(self):
        """Saving must not force parked queries to catch up."""
        monitor = self._monitor()
        for value in WARM + [0.0] * 12:
            monitor.push("s", value)
        before = monitor.prune_stats("s")["replayed_ticks"]
        save_monitor(monitor)
        assert monitor.prune_stats("s")["replayed_ticks"] == before

    def test_unparked_snapshot_keeps_counter_continuity(self):
        """Even with nothing parked the payload rides along: restored
        monitors keep monotone prune counters instead of resetting."""
        monitor = self._monitor()
        for value in WARM + [0.0] * 5:
            monitor.push("s", value)
        monitor.matcher("s", "q0")  # sync: wakes everything, folds counters
        stats = monitor.prune_stats("s")
        assert stats["pruned_ticks"] > 0
        restored = load_monitor(save_monitor(monitor))
        assert restored.prune_stats("s") == stats

    def test_pruning_disabled_snapshot_has_no_prune_payload(self):
        monitor = self._monitor(prune=False)
        for value in WARM + [0.0] * 5:
            monitor.push("s", value)
        assert "prune" not in save_monitor(monitor)

    def test_legacy_payload_without_prune_key_loads(self):
        monitor = self._monitor(prune=False)
        for value in WARM + [0.0] * 4:
            monitor.push("s", value)
        payload = save_monitor(monitor)
        payload.pop("prune", None)
        restored = load_monitor(payload)
        got = []
        expected = []
        for value in [100.0, 0.0, 100.5]:
            got.extend(restored.push("s", value))
            expected.extend(monitor.push("s", value))
        assert self._sig(got) == self._sig(expected)

    def test_regrouped_monitor_with_parked_state_rejected(self):
        monitor = self._monitor()
        for value in WARM + [0.0] * 6:
            monitor.push("s", value)
        payload = save_monitor(monitor)
        # simulate a payload whose bank grouping no longer exists
        entries = payload["prune"]["s"]["banks"]
        entries[0]["queries"] = ["q0", "ghost"]
        with pytest.raises(CheckpointError):
            load_monitor(payload)
