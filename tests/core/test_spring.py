"""Unit tests for the Spring streaming matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Spring, spring_search
from repro.dtw import all_ending_distances, brute_force_best
from repro.exceptions import NotFittedError, ValidationError


class TestConstruction:
    def test_rejects_empty_query(self):
        with pytest.raises(ValidationError):
            Spring([])

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValidationError):
            Spring([1.0], epsilon=-1)

    def test_rejects_nan_epsilon(self):
        with pytest.raises(ValidationError):
            Spring([1.0], epsilon=float("nan"))

    def test_rejects_bad_missing_policy(self):
        with pytest.raises(ValidationError):
            Spring([1.0], missing="ignore")

    def test_rejects_non_numeric_query(self):
        with pytest.raises(ValidationError):
            Spring(["a", "b"])

    def test_rejects_2d_query(self):
        with pytest.raises(ValidationError):
            Spring([[1.0, 2.0]])

    def test_query_length_one(self):
        spring = Spring([5.0], epsilon=1.0)
        match = spring.step(5.0)
        # Single-element query: exact hit qualifies immediately but is
        # only reported once safe; flush drains it.
        final = spring.flush()
        got = match or final
        assert got is not None
        assert got.distance == pytest.approx(0.0)

    def test_m_property(self):
        assert Spring([1, 2, 3]).m == 3


class TestStreamingBasics:
    def test_tick_counts_all_values(self, rng):
        spring = Spring([1.0, 2.0])
        spring.extend(rng.normal(size=17))
        assert spring.tick == 17

    def test_best_match_before_data_raises(self):
        with pytest.raises(NotFittedError):
            Spring([1.0]).best_match

    def test_infinite_value_raises(self):
        spring = Spring([1.0])
        with pytest.raises(ValidationError):
            spring.step(np.inf)

    def test_ending_distances_match_offline(self, rng):
        x = rng.normal(size=150)
        y = rng.normal(size=12)
        # epsilon = 0 never captures, so no report/reset ever perturbs
        # the raw recurrence being compared here.
        spring = Spring(y, epsilon=0.0)
        streamed = []
        for value in x:
            spring.step(value)
            streamed.append(spring.current_distances[-1])
        np.testing.assert_allclose(
            streamed, all_ending_distances(x, y), rtol=1e-9
        )

    def test_best_match_equals_brute_force(self, rng):
        x = rng.normal(size=40)
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=0.0)
        spring.extend(x)
        best = spring.best_match
        bd, bs, be = brute_force_best(x, y)
        assert best.distance == pytest.approx(bd, rel=1e-9)
        assert (best.start - 1, best.end - 1) == (bs, be)

    def test_chunking_invariance(self, rng):
        """Feeding one-by-one or in batches yields identical matches."""
        x = rng.normal(size=200)
        y = rng.normal(size=8)
        one = Spring(y, epsilon=3.0)
        matches_one = []
        for value in x:
            m = one.step(value)
            if m:
                matches_one.append(m)
        batch = Spring(y, epsilon=3.0)
        matches_batch = batch.extend(x)
        assert matches_one == matches_batch
        np.testing.assert_allclose(
            one.current_distances, batch.current_distances
        )

    def test_exact_embedded_query_found_with_zero_distance(self, rng):
        y = rng.normal(size=6)
        x = np.concatenate([rng.normal(size=30) + 8, y, rng.normal(size=30) + 8])
        matches = spring_search(x, y, epsilon=1e-9)
        assert len(matches) == 1
        assert matches[0].distance == pytest.approx(0.0, abs=1e-12)
        assert (matches[0].start, matches[0].end) == (31, 36)


class TestDisjointSemantics:
    def test_no_matches_above_threshold(self, rng):
        x = rng.normal(size=100)
        y = rng.normal(size=5) + 100  # far away
        assert spring_search(x, y, epsilon=1.0) == []

    def test_reported_distances_within_epsilon(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=6)
        for match in spring_search(x, y, epsilon=4.0):
            assert match.distance <= 4.0

    def test_reported_matches_disjoint(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=6)
        matches = spring_search(x, y, epsilon=4.0)
        for a, b in zip(matches, matches[1:]):
            assert a.end < b.start  # reports come ordered and disjoint

    def test_output_time_at_or_after_end(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=6)
        for match in spring_search(x, y, epsilon=4.0):
            if match.output_time is not None:
                assert match.output_time >= match.end

    def test_output_time_independent_of_epsilon(self, rng):
        """Table 2's note: output time does not depend on epsilon."""
        x = rng.normal(size=400)
        y = rng.normal(size=6)
        loose = spring_search(x, y, epsilon=5.0)
        tight = [m for m in spring_search(x, y, epsilon=2.0)]
        # Every tight match also appears (same position & time) loosely
        # *when the loose run did not merge it into a larger group*.
        loose_keys = {(m.start, m.end) for m in loose}
        for match in tight:
            if (match.start, match.end) in loose_keys:
                twin = next(
                    m for m in loose if (m.start, m.end) == (match.start, match.end)
                )
                assert twin.output_time == match.output_time

    def test_flush_reports_pending(self):
        # A qualifying match right at the stream end is still pending
        # (the safety condition cannot fire), so flush must emit it.
        y = [1.0, 2.0, 3.0]
        x = [50.0, 50.0, 1.0, 2.0, 3.0]
        spring = Spring(y, epsilon=0.5)
        assert spring.extend(x) == []
        final = spring.flush()
        assert final is not None
        assert final.distance == pytest.approx(0.0)
        assert (final.start, final.end) == (3, 5)

    def test_flush_twice_returns_none(self):
        spring = Spring([1.0], epsilon=10.0)
        spring.step(1.0)
        assert spring.flush() is not None
        assert spring.flush() is None


class TestMissingValues:
    def test_nan_skips_but_advances_time(self):
        y = [1.0, 2.0]
        spring = Spring(y, epsilon=0.5, missing="skip")
        spring.step(1.0)
        spring.step(float("nan"))
        spring.step(2.0)
        # Time advanced through the gap.
        assert spring.tick == 3
        final = spring.flush()
        assert final is not None
        assert (final.start, final.end) == (1, 3)
        assert final.distance == pytest.approx(0.0)

    def test_nan_with_error_policy_raises(self):
        spring = Spring([1.0], missing="error")
        with pytest.raises(ValidationError):
            spring.step(float("nan"))

    def test_all_nan_stream_reports_nothing(self):
        spring = Spring([1.0], epsilon=10.0)
        matches = spring.extend([float("nan")] * 20)
        assert matches == []
        assert spring.flush() is None


class TestLocalDistanceChoices:
    def test_absolute_distance(self, rng):
        x = rng.normal(size=60)
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=0.0, local_distance="absolute")
        spring.extend(x)
        best = spring.best_match
        # Distances under |.| are smaller-or-comparable; just check
        # consistency against the offline computation.
        offline = all_ending_distances(x, y, local_distance="absolute")
        assert best.distance == pytest.approx(float(offline.min()), rel=1e-9)

    def test_unknown_local_distance_raises(self):
        with pytest.raises(ValidationError):
            Spring([1.0], local_distance="chebyshev")
