"""Edge-case tests for the Spring matcher beyond the common paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Spring, spring_search
from repro.dtw import dtw_distance


class TestDegenerateShapes:
    def test_query_longer_than_stream(self, rng):
        """A stream shorter than the query still matches (DTW stretches
        the few stream values over all query elements)."""
        y = rng.normal(size=10)
        x = rng.normal(size=3)
        spring = Spring(y, epsilon=np.inf)
        spring.extend(x)
        best = spring.best_match
        assert 1 <= best.start <= best.end <= 3
        true = dtw_distance(x[best.start - 1 : best.end], y)
        assert best.distance == pytest.approx(true, rel=1e-9)

    def test_single_value_stream(self, rng):
        y = rng.normal(size=5)
        spring = Spring(y, epsilon=np.inf)
        spring.step(1.0)
        best = spring.best_match
        assert (best.start, best.end) == (1, 1)
        assert best.distance == pytest.approx(
            float(np.sum((1.0 - y) ** 2)), rel=1e-9
        )

    def test_constant_stream_constant_query(self):
        spring = Spring([2.0, 2.0, 2.0], epsilon=1e-6)
        matches = spring.extend([2.0] * 20)
        final = spring.flush()
        if final:
            matches.append(final)
        assert matches
        assert all(m.distance == 0.0 for m in matches)

    def test_zero_epsilon_reports_exact_hits_only(self, rng):
        y = rng.normal(size=4)
        x = np.concatenate([rng.normal(size=10) + 5, y, rng.normal(size=10) + 5])
        matches = spring_search(x, y, epsilon=0.0)
        assert len(matches) == 1
        assert matches[0].distance == 0.0


class TestInterleavedOperations:
    def test_step_after_flush_continues(self, rng):
        """flush() mid-stream reports the pending group; later values
        keep matching (new groups form normally)."""
        y = rng.normal(size=4)
        block = np.concatenate(
            [rng.normal(size=15) + 6, y, rng.normal(size=3) + 6]
        )
        spring = Spring(y, epsilon=1e-9)
        first = spring.extend(block)
        if not first:
            final = spring.flush()
            assert final is not None
            first = [final]
        # Second occurrence after the flush.
        second = spring.extend(
            np.concatenate([rng.normal(size=12) + 6, y, rng.normal(size=15) + 6])
        )
        if not second:
            final = spring.flush()
            assert final is not None
            second = [final]
        assert first[0].end < second[0].start

    def test_tick_survives_mixed_nan_runs(self, rng):
        spring = Spring(rng.normal(size=3))
        values = list(rng.normal(size=10))
        values[2:5] = [np.nan] * 3
        spring.extend(values)
        assert spring.tick == 10

    def test_current_columns_are_copies(self, rng):
        spring = Spring(rng.normal(size=4), epsilon=0.0)
        spring.step(1.0)
        d = spring.current_distances
        d[:] = -1
        assert (spring.current_distances != -1).all()


class TestReportOrderingGuarantees:
    def test_output_times_nondecreasing(self, rng):
        y = rng.normal(size=5)
        matches = spring_search(rng.normal(size=500), y, epsilon=4.0)
        times = [m.output_time for m in matches if m.output_time]
        assert times == sorted(times)

    def test_matches_sorted_by_position(self, rng):
        y = rng.normal(size=5)
        matches = spring_search(rng.normal(size=500), y, epsilon=4.0)
        starts = [m.start for m in matches]
        assert starts == sorted(starts)

    def test_groups_never_straddle_reports(self, rng):
        """After a report at time T, no later match may start at or
        before the reported group's end."""
        y = rng.normal(size=5)
        matches = spring_search(rng.normal(size=500), y, epsilon=4.0)
        for earlier, later in zip(matches, matches[1:]):
            assert later.start > earlier.end
