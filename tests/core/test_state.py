"""Unit tests for the SPRING per-tick state and column updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpringState, update_column, update_column_reference


def _random_costs(rng, m):
    return np.abs(rng.normal(size=m)) ** 2


class TestInitialState:
    def test_shape_and_values(self):
        state = SpringState.initial(5)
        assert state.d.shape == (6,)
        assert state.s.shape == (6,)
        assert state.d[0] == 0.0
        assert np.isinf(state.d[1:]).all()
        assert state.s[0] == 1

    def test_copy_is_deep(self):
        state = SpringState.initial(3)
        clone = state.copy()
        clone.d[1] = 7.0
        assert np.isinf(state.d[1])

    def test_m_property(self):
        assert SpringState.initial(7).m == 7


class TestUpdateEquivalence:
    def test_vectorised_equals_reference(self, rng):
        for _ in range(10):
            m = int(rng.integers(1, 30))
            a = SpringState.initial(m)
            b = SpringState.initial(m)
            for tick in range(1, 60):
                cost = _random_costs(rng, m)
                update_column(a, cost.copy(), tick)
                update_column_reference(b, cost.copy(), tick)
                np.testing.assert_allclose(a.d, b.d, rtol=1e-9, atol=1e-12)
                np.testing.assert_array_equal(a.s, b.s)

    def test_equivalence_with_inf_cells(self, rng):
        """After disjoint resets some cells are inf; updates must agree."""
        m = 8
        a = SpringState.initial(m)
        b = SpringState.initial(m)
        for tick in range(1, 40):
            cost = _random_costs(rng, m)
            update_column(a, cost.copy(), tick)
            update_column_reference(b, cost.copy(), tick)
            if tick % 7 == 0:  # simulate a reset
                a.d[3:] = np.inf
                b.d[3:] = np.inf
            np.testing.assert_allclose(a.d, b.d, rtol=1e-9, atol=1e-12)

    def test_zero_cost_ties_agree(self):
        """All-zero costs produce maximal ties; tie-breaks must align."""
        m = 5
        a = SpringState.initial(m)
        b = SpringState.initial(m)
        for tick in range(1, 12):
            cost = np.zeros(m)
            update_column(a, cost.copy(), tick)
            update_column_reference(b, cost.copy(), tick)
            np.testing.assert_allclose(a.d, b.d)
            np.testing.assert_array_equal(a.s, b.s)


class TestRecurrenceProperties:
    def test_row_one_is_fresh_start(self, rng):
        """d(t, 1) = cost and s(t, 1) = t, always (Figure 5 bottom row)."""
        m = 6
        state = SpringState.initial(m)
        for tick in range(1, 30):
            cost = _random_costs(rng, m)
            update_column(state, cost, tick)
            assert state.d[1] == pytest.approx(cost[0])
            assert state.s[1] == tick

    def test_star_row_invariants(self, rng):
        state = SpringState.initial(4)
        for tick in range(1, 20):
            update_column(state, _random_costs(rng, 4), tick)
            assert state.d[0] == 0.0
            assert state.s[0] == tick + 1

    def test_starts_never_in_future(self, rng):
        state = SpringState.initial(7)
        for tick in range(1, 50):
            update_column(state, _random_costs(rng, 7), tick)
            assert (state.s[1:] <= tick).all()
            assert (state.s[1:] >= 1).all()

    def test_distances_nonnegative(self, rng):
        state = SpringState.initial(5)
        for tick in range(1, 50):
            update_column(state, _random_costs(rng, 5), tick)
            finite = state.d[np.isfinite(state.d)]
            assert (finite >= 0).all()

    def test_m_equals_one(self, rng):
        state = SpringState.initial(1)
        for tick in range(1, 10):
            cost = _random_costs(rng, 1)
            update_column(state, cost, tick)
            assert state.d[1] == pytest.approx(cost[0])
            assert state.s[1] == tick
