"""Unit tests for streaming top-k matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topk import TopKSpring
from repro.exceptions import ValidationError


def _stream_with_patterns(rng, pattern, noises, pad=40):
    """Pattern renditions with controlled noise levels, best-known order."""
    parts = [rng.normal(size=pad) + 8]
    positions = []
    cursor = pad
    for sigma in noises:
        rendition = pattern + rng.normal(0, sigma, pattern.shape[0])
        positions.append((cursor + 1, cursor + pattern.shape[0]))
        parts.append(rendition)
        cursor += pattern.shape[0]
        parts.append(rng.normal(size=pad) + 8)
        cursor += pad
    return np.concatenate(parts), positions


class TestLeaderboard:
    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            TopKSpring([1.0], k=0)

    def test_keeps_k_best(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 25)) * 3
        noises = [0.4, 0.05, 0.8, 0.15, 0.6]
        stream, positions = _stream_with_patterns(rng, pattern, noises)
        top = TopKSpring(pattern, k=2)
        top.extend(stream)
        top.flush()
        best = top.best()
        assert len(best) == 2
        # The two cleanest renditions (sigma 0.05 and 0.15) must win.
        expected = {positions[1], positions[3]}
        got = set()
        for match in best:
            hit = next(
                (p for p in positions if p[0] <= match.end and match.start <= p[1]),
                None,
            )
            got.add(hit)
        assert got == expected

    def test_sorted_best_first(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 20)) * 2
        stream, _ = _stream_with_patterns(rng, pattern, [0.3, 0.1, 0.5])
        top = TopKSpring(pattern, k=3)
        top.extend(stream)
        top.flush()
        distances = [m.distance for m in top.best()]
        assert distances == sorted(distances)

    def test_worst_distance_tracks_kth(self, rng):
        pattern = rng.normal(size=6)
        top = TopKSpring(pattern, k=2)
        assert top.worst_distance == float("inf")
        top.extend(rng.normal(size=100))
        top.flush()
        if len(top.best()) == 2:
            assert top.worst_distance == top.best()[-1].distance

    def test_step_returns_only_admitted(self, rng):
        pattern = rng.normal(size=5)
        top = TopKSpring(pattern, k=1)
        admitted = top.extend(rng.normal(size=300))
        final = top.flush()
        if final:
            admitted.append(final)
        # Admissions happen only when the leaderboard improves, so the
        # admitted distances must be strictly decreasing after the first.
        distances = [m.distance for m in admitted]
        assert all(b < a for a, b in zip(distances, distances[1:]))
        assert top.best()[0].distance == min(distances)

    def test_entries_disjoint(self, rng):
        pattern = rng.normal(size=6)
        top = TopKSpring(pattern, k=4)
        top.extend(rng.normal(size=400))
        top.flush()
        best = sorted(top.best(), key=lambda m: m.start)
        for a, b in zip(best, best[1:]):
            assert a.end < b.start

    def test_flush_idempotent(self, rng):
        top = TopKSpring(rng.normal(size=4), k=2)
        top.extend(rng.normal(size=50))
        top.flush()
        count = len(top.best())
        assert top.flush() is None
        assert len(top.best()) == count


class TestFinalizeRemoved:
    def test_finalize_is_gone(self, rng):
        # The deprecated alias was removed; flush() is the only
        # end-of-stream method.
        top = TopKSpring(rng.normal(size=4), k=2)
        assert not hasattr(top, "finalize")

    def test_flush_emits_no_warning(self, rng):
        import warnings

        top = TopKSpring(rng.normal(size=4), k=2)
        top.extend(rng.normal(size=50))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            top.flush()
