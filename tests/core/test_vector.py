"""Unit tests for VectorSpring (k-dimensional streams, Section 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Spring, VectorSpring, spring_search_vector
from repro.exceptions import ValidationError


class TestConstruction:
    def test_accepts_2d_query(self):
        spring = VectorSpring(np.zeros((5, 3)))
        assert spring.m == 5
        assert spring.k == 3

    def test_1d_query_degrades_to_k1(self):
        spring = VectorSpring([1.0, 2.0])
        assert spring.k == 1

    def test_rejects_wrong_value_dimension(self):
        spring = VectorSpring(np.zeros((3, 2)))
        with pytest.raises(ValidationError):
            spring.step([1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            VectorSpring(np.zeros((0, 3)))


class TestEquivalenceWithScalar:
    def test_k1_matches_scalar_spring(self, rng):
        x = rng.normal(size=120)
        y = rng.normal(size=9)
        scalar = Spring(y, epsilon=3.0)
        vector = VectorSpring(y.reshape(-1, 1), epsilon=3.0)
        ms = scalar.extend(x)
        mv = vector.extend(x.reshape(-1, 1))
        assert [(m.start, m.end, m.output_time) for m in ms] == [
            (m.start, m.end, m.output_time) for m in mv
        ]
        np.testing.assert_allclose(
            scalar.current_distances, vector.current_distances
        )

    def test_dimensions_sum_independent_channels(self, rng):
        """With identical data in each channel, distances scale by k."""
        x = rng.normal(size=50)
        y = rng.normal(size=6)
        scalar = Spring(y, epsilon=0.0)
        scalar.extend(x)
        k3 = VectorSpring(np.tile(y[:, None], (1, 3)), epsilon=0.0)
        k3.extend(np.tile(x[:, None], (1, 3)))
        np.testing.assert_allclose(
            k3.current_distances, 3.0 * scalar.current_distances, rtol=1e-9
        )


class TestDetection:
    def test_embedded_vector_pattern_found(self, rng):
        k = 4
        y = rng.normal(size=(6, k))
        x = np.vstack(
            [rng.normal(size=(20, k)) + 10, y, rng.normal(size=(20, k)) + 10]
        )
        matches = spring_search_vector(x, y, epsilon=1e-9)
        assert len(matches) == 1
        assert (matches[0].start, matches[0].end) == (21, 26)

    def test_manhattan_distance_option(self, rng):
        y = rng.normal(size=(4, 2))
        spring = VectorSpring(y, epsilon=0.0, local_distance="manhattan")
        spring.extend(rng.normal(size=(30, 2)))
        assert np.isfinite(spring.best_match.distance)


class TestRangeReporting:
    def test_group_extent_covers_match(self, rng):
        y = rng.normal(size=(5, 2))
        x = np.vstack(
            [rng.normal(size=(15, 2)) + 6, y, rng.normal(size=(15, 2)) + 6]
        )
        matches = spring_search_vector(x, y, epsilon=0.5, report_range=True)
        assert len(matches) == 1
        match = matches[0]
        assert match.group_start is not None
        assert match.group_start <= match.start
        assert match.group_end >= match.end

    def test_no_range_without_flag(self, rng):
        y = rng.normal(size=(5, 2))
        x = np.vstack([rng.normal(size=(10, 2)) + 6, y])
        matches = spring_search_vector(x, y, epsilon=0.5)
        assert matches and matches[0].group_start is None
