"""Unit tests for the ECG generator and the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import spring_search
from repro.datasets.ecg import ecg_stream, normal_beat, pvc_beat
from repro.datasets.registry import build, dataset_names, export_csv
from repro.eval import score_matches
from repro.exceptions import ValidationError
from repro.streams import CsvSource


class TestBeats:
    def test_normal_beat_shape(self):
        beat = normal_beat(80)
        assert beat.shape == (80,)
        # The R spike is the tallest feature, near 44 % through the beat.
        assert 0.3 < np.argmax(beat) / 80 < 0.6
        assert beat.max() > 1.0

    def test_pvc_differs_from_normal(self):
        a = normal_beat(80)
        b = pvc_beat(80)
        assert not np.allclose(a, b)
        # PVC has no P wave: little energy in the first fifth.
        assert np.abs(b[:16]).max() < np.abs(a[:16]).max() + 0.2


class TestEcgStream:
    def test_anomaly_detection_perfect_at_defaults(self):
        data = ecg_stream(beats=150, seed=3)
        matches = spring_search(data.values, data.query, data.suggested_epsilon)
        score = score_matches(matches, data.occurrence_intervals())
        assert score.perfect

    def test_ground_truth_labels(self):
        data = ecg_stream(beats=200, pvc_probability=0.1, seed=1)
        assert all(occ.label == "pvc" for occ in data.occurrences)
        assert len(data.occurrences) > 5

    def test_no_anomalies_when_probability_zero(self):
        data = ecg_stream(beats=50, pvc_probability=0.0, seed=1)
        assert data.occurrences == []

    def test_rejects_variability_of_one(self):
        with pytest.raises(ValidationError):
            ecg_stream(rate_variability=1.0)


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        for expected in ("chirp", "temperature", "kursk", "sunspots",
                         "mocap", "ecg"):
            assert expected in names

    def test_build_forwards_kwargs(self):
        data = build("chirp", n=3000, query_length=200, bursts=2, seed=1)
        assert data.n == 3000

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError):
            build("stocks")

    def test_export_csv_round_trip(self, tmp_path):
        data = build("chirp", n=2000, query_length=150, bursts=1, seed=2)
        paths = export_csv(data, tmp_path)
        stream_back = np.asarray(
            list(CsvSource(paths["stream"])), dtype=np.float64
        )
        np.testing.assert_allclose(stream_back, data.values)
        query_back = np.asarray(
            list(CsvSource(paths["query"])), dtype=np.float64
        )
        np.testing.assert_allclose(query_back, data.query)
        truth_lines = paths["truth"].read_text().strip().splitlines()
        assert len(truth_lines) == 1 + len(data.occurrences)

    def test_export_preserves_missing_values(self, tmp_path):
        data = build("temperature", n=2000, day_length=200, seed=2)
        paths = export_csv(data, tmp_path)
        back = np.asarray(list(CsvSource(paths["stream"])), dtype=np.float64)
        np.testing.assert_array_equal(
            np.isnan(back), np.isnan(data.values)
        )

    def test_export_vector_dataset(self, tmp_path):
        data = build(
            "mocap", motion_length=40, channels=3, transition_length=5, seed=1
        )
        paths = export_csv(data, tmp_path)
        rows = list(CsvSource(paths["stream"], columns=[0, 1, 2]))
        assert len(rows) == data.values.shape[0]
        np.testing.assert_allclose(rows[0], data.values[0])
