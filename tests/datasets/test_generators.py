"""Unit tests for the dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    LabeledStream,
    MOTION_TYPES,
    SESSION_PLAN,
    masked_chirp,
    mocap_session,
    motion_query,
    seismic_stream,
    sunspot_stream,
    temperature_stream,
)
from repro.exceptions import ValidationError


class TestMaskedChirp:
    def test_shapes_and_ground_truth(self):
        data = masked_chirp(n=5000, query_length=400, bursts=3, seed=1)
        assert data.n == 5000
        assert data.m == 400
        assert len(data.occurrences) == 3
        for occ in data.occurrences:
            assert 1 <= occ.start <= occ.end <= 5000

    def test_occurrences_disjoint_and_ordered(self):
        data = masked_chirp(n=8000, query_length=300, bursts=5, seed=2)
        occs = data.occurrences
        for a, b in zip(occs, occs[1:]):
            assert a.end < b.start

    def test_burst_lengths_scale_with_period(self):
        data = masked_chirp(
            n=8000, query_length=400, bursts=2,
            period_scales=[1.0, 2.0], seed=3,
        )
        lengths = [occ.length for occ in data.occurrences]
        assert lengths[0] == 400
        assert lengths[1] == 800

    def test_deterministic_for_seed(self):
        a = masked_chirp(n=3000, query_length=200, bursts=2, seed=7)
        b = masked_chirp(n=3000, query_length=200, bursts=2, seed=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = masked_chirp(n=3000, query_length=200, bursts=2, seed=7)
        b = masked_chirp(n=3000, query_length=200, bursts=2, seed=8)
        assert not np.array_equal(a.values, b.values)

    def test_zero_bursts(self):
        data = masked_chirp(n=1000, query_length=100, bursts=0, seed=1)
        assert data.occurrences == []

    def test_too_many_bursts_raises(self):
        with pytest.raises(ValidationError):
            masked_chirp(n=500, query_length=400, bursts=4)

    def test_wrong_scale_count_raises(self):
        with pytest.raises(ValidationError):
            masked_chirp(n=5000, query_length=100, bursts=2, period_scales=[1.0])

    def test_burst_region_has_signal_energy(self):
        data = masked_chirp(n=5000, query_length=400, bursts=2,
                            noise_sigma=0.05, seed=4)
        for occ in data.occurrences:
            burst = data.values[occ.slice]
            outside = data.values[: data.occurrences[0].start - 1]
            assert burst.std() > 3 * max(outside.std(), 1e-9)


class TestTemperature:
    def test_range_and_missing(self):
        data = temperature_stream(n=8000, day_length=400, seed=1)
        finite = data.values[~np.isnan(data.values)]
        assert finite.min() > 15.0
        assert finite.max() < 36.0
        assert 0.0 < np.isnan(data.values).mean() < 0.2

    def test_hot_days_count(self):
        data = temperature_stream(n=10000, day_length=500, hot_days=3, seed=2)
        assert len(data.occurrences) == 3

    def test_too_many_hot_days_raises(self):
        with pytest.raises(ValidationError):
            temperature_stream(n=2000, day_length=1000, hot_days=5)

    def test_query_spans_range(self):
        data = temperature_stream(n=5000, day_length=300, seed=3)
        assert data.query.min() == pytest.approx(20.0, abs=0.5)
        assert data.query.max() == pytest.approx(32.0, abs=0.5)


class TestSeismic:
    def test_event_amplitude_dominates_floor(self):
        data = seismic_stream(n=20000, event_length=2000, events=1, seed=1)
        occ = data.occurrences[0]
        event_peak = np.abs(data.values[occ.slice]).max()
        floor_peak = np.abs(data.values[: occ.start - 1]).max()
        assert event_peak > 5 * floor_peak

    def test_multiple_events(self):
        data = seismic_stream(n=30000, event_length=2000, events=3, seed=2)
        assert len(data.occurrences) == 3

    def test_events_do_not_fit_raises(self):
        with pytest.raises(ValidationError):
            seismic_stream(n=1000, event_length=600, events=2)


class TestSunspots:
    def test_nonnegative_counts(self):
        data = sunspot_stream(n=10000, cycle_length=1500, seed=1)
        assert (data.values >= 0).all()

    def test_cycles_cover_stream(self):
        data = sunspot_stream(n=12000, cycle_length=1500,
                              quiet_fraction=0.0, seed=2)
        # With no quiet cycles, nearly every full cycle is ground truth.
        covered = sum(occ.length for occ in data.occurrences)
        assert covered > 0.6 * data.n

    def test_query_is_skewed_cycle(self):
        data = sunspot_stream(n=5000, cycle_length=1000, seed=3)
        peak_at = int(np.argmax(data.query))
        assert peak_at < data.m / 2  # fast rise, slow decay


class TestMocap:
    def test_session_plan_and_channels(self):
        data = mocap_session(motion_length=60, channels=8,
                             transition_length=10, seed=1)
        assert data.values.shape[1] == 8
        assert [occ.label for occ in data.occurrences] == list(SESSION_PLAN)

    def test_motion_queries_distinct(self):
        queries = {m: motion_query(m, 60, 8) for m in MOTION_TYPES}
        for a in MOTION_TYPES:
            for b in MOTION_TYPES:
                if a != b:
                    assert not np.allclose(queries[a], queries[b])

    def test_motifs_stable_across_calls(self):
        a = motion_query("walking", 60, 8)
        b = motion_query("walking", 60, 8)
        np.testing.assert_array_equal(a, b)

    def test_unknown_motion_raises(self):
        with pytest.raises(ValidationError):
            motion_query("swimming", 60, 8)
        with pytest.raises(ValidationError):
            mocap_session(plan=("flying",), motion_length=60, channels=4)

    def test_stretch_band_varies_lengths(self):
        data = mocap_session(
            plan=("walking",) * 5, motion_length=100, channels=4,
            stretch_band=0.4, transition_length=5, seed=3,
        )
        lengths = {occ.length for occ in data.occurrences}
        assert len(lengths) > 1


class TestLabeledStream:
    def test_interval_helpers(self):
        data = masked_chirp(n=3000, query_length=200, bursts=2, seed=5)
        intervals = data.occurrence_intervals()
        assert intervals == [(o.start, o.end) for o in data.occurrences]
        assert isinstance(data, LabeledStream)
