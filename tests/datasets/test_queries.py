"""Unit tests for query extraction and perturbation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import extract_query, perturb_query
from repro.exceptions import ValidationError


class TestExtractQuery:
    def test_basic_extraction(self):
        values = np.arange(10.0)
        np.testing.assert_allclose(extract_query(values, 3, 5), [2.0, 3.0, 4.0])

    def test_detrend(self):
        query = extract_query([10.0, 12.0, 14.0], 1, 3, detrend=True)
        assert query.mean() == pytest.approx(0.0)

    def test_interpolates_missing(self):
        values = [1.0, np.nan, 3.0]
        np.testing.assert_allclose(extract_query(values, 1, 3), [1.0, 2.0, 3.0])

    def test_all_missing_raises(self):
        with pytest.raises(ValidationError):
            extract_query([np.nan, np.nan], 1, 2)

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValidationError):
            extract_query([1.0, 2.0], 1, 5)

    def test_roundtrip_through_spring(self, rng):
        """An extracted episode must re-match its own source region."""
        from repro.core import spring_search

        stream = rng.normal(size=200)
        stream[80:110] += np.sin(np.linspace(0, 2 * np.pi, 30)) * 4
        query = extract_query(stream, 81, 110)
        matches = spring_search(stream, query, epsilon=1e-9)
        assert any(m.start == 81 and m.end == 110 for m in matches)


class TestPerturbQuery:
    def test_stretch_changes_length(self, rng):
        query = rng.normal(size=20)
        assert perturb_query(query, stretch=1.5).shape[0] == 30

    def test_noise_changes_values(self, rng):
        query = rng.normal(size=20)
        noisy = perturb_query(query, noise_sigma=0.5, seed=1)
        assert not np.allclose(noisy, query)

    def test_identity(self, rng):
        query = rng.normal(size=20)
        np.testing.assert_allclose(perturb_query(query), query)

    def test_bad_stretch_raises(self, rng):
        with pytest.raises(ValidationError):
            perturb_query([1.0, 2.0], stretch=0.0)

    def test_perturbed_query_still_matches(self, rng):
        """DTW robustness: a stretched+noisy query still finds the
        original pattern — the property the paper's intro promises."""
        from repro.core import spring_search

        pattern = np.sin(np.linspace(0, 2 * np.pi, 40)) * 3
        stream = np.concatenate(
            [rng.normal(size=50), pattern, rng.normal(size=50)]
        )
        query = perturb_query(pattern, stretch=1.4, noise_sigma=0.1, seed=2)
        matches = spring_search(stream, query, epsilon=30.0)
        assert any(40 <= m.start <= 60 for m in matches)
