"""Unit tests for the random-walk motif dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NormalizedSpring
from repro.datasets.walks import head_and_shoulders, walk_with_motifs
from repro.eval import score_matches
from repro.exceptions import ValidationError


class TestMotif:
    def test_zero_mean(self):
        motif = head_and_shoulders(100)
        assert abs(motif.mean()) < 1e-12

    def test_three_peaks(self):
        motif = head_and_shoulders(200, amplitude=1.0)
        # Head taller than shoulders, peaks near 20/50/80 %.
        head = motif[80:120].max()
        left = motif[20:60].max()
        right = motif[140:180].max()
        assert head > left and head > right


class TestWalkWithMotifs:
    def test_ground_truth_count(self):
        data = walk_with_motifs(n=8000, occurrences=3, seed=1)
        assert len(data.occurrences) == 3

    def test_occurrences_disjoint(self):
        data = walk_with_motifs(n=10000, occurrences=4, seed=2)
        occs = data.occurrences
        for a, b in zip(occs, occs[1:]):
            assert a.end < b.start

    def test_too_many_occurrences_raises(self):
        with pytest.raises(ValidationError):
            walk_with_motifs(n=500, occurrences=10)

    def test_normalized_matcher_finds_motifs_on_drifting_walk(self):
        """The dataset's purpose: motifs ride the walk's level, so the
        EWM-normalised matcher finds them where raw matching cannot."""
        data = walk_with_motifs(
            n=6000, occurrences=3, step_sigma=0.08, noise_sigma=0.1, seed=3
        )
        matcher = NormalizedSpring(
            data.query,
            epsilon=25.0,
            mode="ewm",
            halflife=60.0,
            warmup=60,
        )
        matches = matcher.extend(data.values)
        final = matcher.flush()
        if final:
            matches.append(final)
        score = score_matches(matches, data.occurrence_intervals())
        assert score.recall == 1.0
