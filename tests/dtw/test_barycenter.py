"""Unit tests for DTW barycenter averaging (DBA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import dtw_distance
from repro.dtw.barycenter import dba_average, resample
from repro.exceptions import ValidationError


def _renditions(rng, pattern, count, stretch_band=0.3, noise=0.2):
    out = []
    for _ in range(count):
        factor = 1.0 + rng.uniform(-stretch_band, stretch_band)
        length = max(4, int(round(pattern.shape[0] * factor)))
        stretched = np.interp(
            np.linspace(0, pattern.shape[0] - 1, length),
            np.arange(pattern.shape[0]),
            pattern,
        )
        out.append(stretched + rng.normal(0, noise, length))
    return out


class TestResample:
    def test_identity_length(self, rng):
        values = rng.normal(size=10)
        np.testing.assert_allclose(resample(values, 10), values)

    def test_endpoints_kept(self, rng):
        values = rng.normal(size=10)
        out = resample(values, 23)
        assert out[0] == pytest.approx(values[0])
        assert out[-1] == pytest.approx(values[-1])

    def test_bad_length(self, rng):
        with pytest.raises(ValidationError):
            resample([1.0, 2.0], 0)


class TestDba:
    def test_single_example_is_resampled_copy(self, rng):
        example = rng.normal(size=12)
        np.testing.assert_allclose(dba_average([example], length=12), example)

    def test_requires_examples(self):
        with pytest.raises(ValidationError):
            dba_average([])

    def test_template_closer_than_any_single_example(self, rng):
        """The point of DBA: the learned template generalises better
        (lower mean DTW distance to held-out renditions) than a single
        noisy exemplar."""
        pattern = np.sin(np.linspace(0, 2 * np.pi, 40)) * 3
        train = _renditions(rng, pattern, 6)
        test = _renditions(rng, pattern, 6)
        template = dba_average(train, length=40)

        def mean_distance(candidate):
            return float(
                np.mean([dtw_distance(candidate, t) for t in test])
            )

        template_score = mean_distance(template)
        exemplar_scores = [mean_distance(t) for t in train]
        assert template_score < np.median(exemplar_scores)

    def test_template_converges_toward_clean_pattern(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 30)) * 2
        train = _renditions(rng, pattern, 8, noise=0.15)
        template = dba_average(train, length=30, iterations=15)
        assert dtw_distance(template, pattern) < min(
            dtw_distance(t, pattern) for t in train
        )

    def test_deterministic(self, rng):
        pattern = np.sin(np.linspace(0, np.pi, 20))
        train = _renditions(rng, pattern, 4)
        a = dba_average(train, length=20)
        b = dba_average(train, length=20)
        np.testing.assert_array_equal(a, b)

    def test_identical_examples_fixed_point(self, rng):
        example = rng.normal(size=15)
        template = dba_average([example, example, example], length=15)
        np.testing.assert_allclose(template, example, rtol=1e-9)

    def test_absolute_local_distance(self, rng):
        pattern = np.sin(np.linspace(0, np.pi, 15))
        train = _renditions(rng, pattern, 3)
        template = dba_average(train, length=15, local_distance="absolute")
        assert template.shape == (15,)
