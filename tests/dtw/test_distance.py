"""Unit tests for whole-sequence DTW."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    dtw_distance,
    dtw_distance_matrix,
    dtw_windowed,
)
from repro.exceptions import EmptySequenceError, ValidationError


class TestDtwDistanceBasics:
    def test_identical_sequences_have_zero_distance(self):
        x = [1.0, 2.0, 3.0, 2.0]
        assert dtw_distance(x, x) == 0.0

    def test_single_elements(self):
        assert dtw_distance([3.0], [5.0]) == pytest.approx(4.0)

    def test_known_small_example(self):
        # X = (1, 2, 3), Y = (1, 3): optimal alignment warps 2 onto
        # either 1 or 3 at cost 1.
        assert dtw_distance([1, 2, 3], [1, 3]) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        x = rng.normal(size=20)
        y = rng.normal(size=13)
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_constant_shift_costs_per_cell(self):
        x = np.zeros(4)
        y = np.ones(4)
        # Diagonal path: 4 cells, each cost 1.
        assert dtw_distance(x, y) == pytest.approx(4.0)

    def test_time_stretching_is_cheap(self):
        # The same shape at double length should be almost free under
        # DTW (each element matched against its repeated twin).
        y = np.sin(np.linspace(0, 2 * np.pi, 30))
        x = np.repeat(y, 2)
        assert dtw_distance(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_absolute_distance_option(self):
        assert dtw_distance([0.0], [2.0], local_distance="absolute") == pytest.approx(2.0)
        assert dtw_distance([0.0], [2.0], local_distance="squared") == pytest.approx(4.0)

    def test_callable_local_distance(self):
        def half_abs(a, b):
            return 0.5 * np.sum(np.abs(a - b), axis=-1)

        assert dtw_distance([0.0], [2.0], local_distance=half_abs) == pytest.approx(1.0)

    def test_vector_sequences(self):
        x = [[0.0, 0.0], [1.0, 1.0]]
        y = [[0.0, 0.0], [1.0, 1.0]]
        assert dtw_distance(x, y) == 0.0
        y2 = [[1.0, 0.0], [2.0, 1.0]]
        assert dtw_distance(x, y2) == pytest.approx(2.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValidationError):
            dtw_distance([[1.0, 2.0]], [[1.0, 2.0, 3.0]])

    def test_empty_raises(self):
        with pytest.raises(EmptySequenceError):
            dtw_distance([], [1.0])

    def test_nan_raises(self):
        with pytest.raises(ValidationError):
            dtw_distance([np.nan], [1.0])


class TestDtwMatrixAgreement:
    def test_rolling_matches_matrix(self, rng):
        for _ in range(5):
            x = rng.normal(size=int(rng.integers(2, 25)))
            y = rng.normal(size=int(rng.integers(2, 25)))
            d1 = dtw_distance(x, y)
            d2, acc = dtw_distance_matrix(x, y)
            assert d1 == pytest.approx(d2, rel=1e-12)
            assert acc.shape == (x.shape[0], y.shape[0])

    def test_matrix_monotone_along_rows(self, rng):
        x = rng.normal(size=12)
        y = rng.normal(size=9)
        _, acc = dtw_distance_matrix(x, y)
        # Accumulated cost can only grow along the first column (only
        # vertical steps feed it).
        first_col = acc[:, 0]
        assert np.all(np.diff(first_col) >= 0)


class TestWindowedDtw:
    def test_wide_band_equals_unconstrained(self, rng):
        x = rng.normal(size=15)
        y = rng.normal(size=15)
        full = dtw_distance(x, y)
        banded = dtw_windowed(x, y, constraint="sakoe_chiba", radius=15)
        assert banded == pytest.approx(full)

    def test_zero_radius_is_euclidean(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        banded = dtw_windowed(x, y, constraint="sakoe_chiba", radius=0)
        assert banded == pytest.approx(float(np.sum((x - y) ** 2)))

    def test_band_never_below_unconstrained(self, rng):
        for radius in (0, 1, 2, 4):
            x = rng.normal(size=12)
            y = rng.normal(size=12)
            assert dtw_windowed(x, y, radius=radius) >= dtw_distance(x, y) - 1e-12

    def test_itakura_wide_slope_close_to_unconstrained(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        constrained = dtw_windowed(x, y, constraint="itakura", max_slope=50.0)
        assert constrained >= dtw_distance(x, y) - 1e-12

    def test_unknown_constraint_raises(self):
        with pytest.raises(ValidationError):
            dtw_windowed([1.0], [1.0], constraint="bogus")
