"""Unit tests for the per-window-normalised DTW math.

The shared DP (:func:`normalized_window_dtw`) is validated against the
reference :func:`accumulate_full` loop here, so the differential suite
can rely on "matcher == oracle bit-exactly" meaning both run *this*
(independently checked) arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    brute_force_dynnorm,
    dtw_distance,
    dynnorm_lower_bound,
    normalize_query,
    normalized_window_dtw,
    window_moments,
)
from repro.dtw.matrix import accumulate_full, pairwise_cost_matrix
from repro.exceptions import ValidationError


class TestWindowMoments:
    def test_matches_numpy_moments(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            v = rng.normal(scale=3.0, size=int(rng.integers(1, 40)))
            mu, sigma = window_moments(v)
            assert mu == pytest.approx(float(np.mean(v)), rel=1e-12, abs=1e-12)
            assert sigma == pytest.approx(float(np.std(v)), rel=1e-9, abs=1e-12)

    def test_sequential_sum_order_is_left_to_right(self):
        # The moments must come from oldest-to-newest sequential sums —
        # the exact float64 additions the streaming matcher's rolling
        # shift-and-add performs — or the bit-exactness contract breaks.
        rng = np.random.default_rng(11)
        v = rng.normal(scale=1e6, size=25) + rng.normal(size=25)
        s = 0.0
        q = 0.0
        for value in v:
            s = s + float(value)
            q = q + float(value) * float(value)
        mu, sigma = window_moments(v)
        n = v.shape[0]
        expected_mu = s / n
        var = q / n - expected_mu * expected_mu
        if var < 0.0:
            var = 0.0
        assert mu == expected_mu
        assert sigma == float(np.sqrt(var))

    def test_constant_window_has_zero_std(self):
        mu, sigma = window_moments([2.5, 2.5, 2.5])
        assert mu == 2.5
        assert sigma == 0.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            window_moments([])


class TestNormalizeQuery:
    def test_zero_mean_unit_scale(self):
        qn = normalize_query([0.0, 2.0, -1.0, 1.0])
        mu, sigma = window_moments(qn)
        assert mu == pytest.approx(0.0, abs=1e-12)
        assert sigma == pytest.approx(1.0, rel=1e-12)

    def test_constant_query_rejected(self):
        with pytest.raises(ValidationError, match="constant"):
            normalize_query([3.0, 3.0, 3.0])


class TestNormalizedWindowDtw:
    def test_matches_reference_accumulation(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            z = rng.normal(size=int(rng.integers(1, 10)))
            qn = rng.normal(size=int(rng.integers(1, 7)))
            got = normalized_window_dtw(z, qn)
            acc = accumulate_full(pairwise_cost_matrix(z, qn, "squared"))
            assert got == pytest.approx(acc[-1, -1], rel=1e-9, abs=1e-12)

    def test_matches_dtw_distance(self):
        rng = np.random.default_rng(5)
        z = rng.normal(size=9)
        qn = rng.normal(size=5)
        assert normalized_window_dtw(z, qn) == pytest.approx(
            dtw_distance(z, qn), rel=1e-9
        )

    def test_absolute_distance_supported(self):
        z = np.array([0.0, 1.0, 0.0])
        qn = np.array([0.0, 1.0, 0.0])
        assert normalized_window_dtw(z, qn, "absolute") == 0.0
        assert normalized_window_dtw(z, qn + 1.0, "absolute") == pytest.approx(
            accumulate_full(
                pairwise_cost_matrix(z, qn + 1.0, "absolute")
            )[-1, -1]
        )

    def test_exact_on_integer_costs(self):
        # Integer-valued inputs make every path sum exactly representable,
        # so the prefix-sum/prefix-min vectorisation must agree with the
        # reference per-cell loop to the last bit.
        rng = np.random.default_rng(9)
        for _ in range(100):
            z = rng.integers(-8, 9, size=int(rng.integers(2, 9))).astype(float)
            qn = rng.integers(-8, 9, size=int(rng.integers(2, 6))).astype(float)
            acc = accumulate_full(pairwise_cost_matrix(z, qn, "squared"))
            assert normalized_window_dtw(z, qn) == acc[-1, -1]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            normalized_window_dtw([], [1.0])


class TestLowerBound:
    def test_never_exceeds_computed_dtw(self):
        # The fp-safety claim: the max-of-corners bound is <= the DP's
        # *computed* value, not merely the exact one.
        rng = np.random.default_rng(13)
        for _ in range(300):
            z = rng.normal(size=int(rng.integers(1, 10)))
            qn = rng.normal(size=int(rng.integers(1, 7)))
            bound = dynnorm_lower_bound(float(z[0]), float(z[-1]), qn)
            assert bound <= normalized_window_dtw(z, qn)

    def test_equals_corner_cost_max(self):
        qn = np.array([1.0, 0.0, -1.0])
        assert dynnorm_lower_bound(3.0, -1.0, qn) == 4.0  # (3-1)^2 vs 0


class TestBruteForceOracle:
    def test_enumeration_order_and_coordinates(self):
        x = [1.0, 2.0, 5.0, 3.0, 4.0]
        out = brute_force_dynnorm(x, [0.0, 1.0, 0.5], 2, 3)
        spans = [(s, e) for s, e, _ in out]
        assert spans == [
            (1, 2),            # end 2: only length 2 exists
            (1, 3), (2, 3),    # end 3: length desc = start asc
            (2, 4), (3, 4),
            (3, 5), (4, 5),
        ]

    def test_nan_gaps_are_skipped_but_keep_raw_ticks(self):
        x = [1.0, np.nan, 2.0, np.nan, np.nan, 5.0]
        out = brute_force_dynnorm(x, [0.0, 1.0], 2, 2)
        # Windows pair consecutive *non-missing* values; coordinates
        # stay raw (gap-spanning), exactly like the matcher's ring.
        assert [(s, e) for s, e, _ in out] == [(1, 3), (3, 6)]

    def test_min_std_drops_constant_windows(self):
        x = [2.0, 2.0, 2.0, 4.0]
        out = brute_force_dynnorm(x, [0.0, 1.0], 2, 2)
        assert [(s, e) for s, e, _ in out] == [(3, 4)]

    def test_window_distance_is_per_window_normalised(self):
        # A scaled + shifted copy of the query is a distance-0 window.
        q = [0.0, 2.0, -1.0, 1.0]
        x = list(7.0 + 3.0 * np.asarray(q))
        out = brute_force_dynnorm(x, q, 4, 4)
        assert len(out) == 1
        start, end, distance = out[0]
        assert (start, end) == (1, 4)
        assert distance == pytest.approx(0.0, abs=1e-16)

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            brute_force_dynnorm([1.0, np.inf], [0.0, 1.0], 2, 2)

    def test_bad_band_rejected(self):
        with pytest.raises(ValidationError):
            brute_force_dynnorm([1.0, 2.0], [0.0, 1.0], 1, 2)
        with pytest.raises(ValidationError):
            brute_force_dynnorm([1.0, 2.0], [0.0, 1.0], 3, 2)
