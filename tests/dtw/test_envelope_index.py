"""Unit tests for the group-envelope index (construction mechanics).

The bound/certification *properties* live in
``tests/properties/test_lower_bound_tightness.py``; this module pins
the deterministic construction contract the admission layer and the
checkpoint exactness argument rely on: ordering, group shapes, the
descent expansion, and the validation surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.envelope_index import GroupEnvelopeIndex, build_group_index
from repro.exceptions import ValidationError

LO = np.array([5.0, 1.0, 3.0, 1.0, 4.0])
HI = np.array([6.0, 2.0, 3.5, 2.5, 9.0])
EPS = np.array([0.5, 1.0, 0.25, 2.0, 0.75])


class TestConstruction:
    def test_rows_sorted_by_corridor_then_row(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        # lo ascending, hi breaks the 1.0 tie, row would break a full tie
        assert index.rows.tolist() == [1, 3, 2, 4, 0]

    def test_group_shapes_and_ragged_tail(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        assert index.n_groups == 3
        assert len(index) == 3
        assert index.gid.tolist() == [0, 0, 1, 1, 2]

    def test_merged_mbrs(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        # group 0 = rows {1, 3}, group 1 = {2, 4}, group 2 = {0}
        assert index.lo.tolist() == [1.0, 3.0, 5.0]
        assert index.hi.tolist() == [2.5, 9.0, 6.0]
        assert index.eps.tolist() == [2.0, 0.75, 0.5]

    def test_group_size_covering_everything(self):
        index = build_group_index(LO, HI, EPS, group_size=100)
        assert index.n_groups == 1
        assert index.lo[0] == LO.min()
        assert index.hi[0] == HI.max()
        assert index.eps[0] == EPS.max()

    def test_group_size_one_is_a_permutation(self):
        index = build_group_index(LO, HI, EPS, group_size=1)
        assert index.n_groups == 5
        np.testing.assert_array_equal(index.lo, LO[index.rows])
        np.testing.assert_array_equal(index.hi, HI[index.rows])
        np.testing.assert_array_equal(index.eps, EPS[index.rows])

    def test_subset_rows(self):
        rows = np.array([0, 2, 4])
        index = GroupEnvelopeIndex(rows, LO, HI, EPS, group_size=2)
        assert sorted(index.rows.tolist()) == [0, 2, 4]
        assert index.n_groups == 2

    def test_construction_is_deterministic(self):
        """Same member set (any order) -> byte-identical index.

        Checkpoint restores rebuild the index instead of serialising
        it; this equality is what makes that exact.
        """
        a = GroupEnvelopeIndex(np.array([4, 0, 2]), LO, HI, EPS, 2)
        b = GroupEnvelopeIndex(np.array([2, 4, 0]), LO, HI, EPS, 2)
        assert a.rows.tobytes() == b.rows.tobytes()
        assert a.lo.tobytes() == b.lo.tobytes()
        assert a.hi.tobytes() == b.hi.tobytes()
        assert a.eps.tobytes() == b.eps.tobytes()


class TestDescend:
    def test_descend_expands_uncertified_groups_only(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        certified = np.array([True, False, True])
        # group 1 holds rows {2, 4} in index order
        assert index.descend_rows(certified).tolist() == [2, 4]

    def test_descend_all_certified_is_empty(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        out = index.descend_rows(np.ones(3, dtype=bool))
        assert out.size == 0

    def test_descend_none_certified_returns_all(self):
        index = build_group_index(LO, HI, EPS, group_size=2)
        out = index.descend_rows(np.zeros(3, dtype=bool))
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4]


class TestValidation:
    def test_rejects_nonpositive_group_size(self):
        with pytest.raises(ValidationError):
            build_group_index(LO, HI, EPS, group_size=0)
        with pytest.raises(ValidationError):
            build_group_index(LO, HI, EPS, group_size=-3)

    def test_rejects_empty_row_set(self):
        with pytest.raises(ValidationError):
            GroupEnvelopeIndex(np.array([], dtype=np.int64), LO, HI, EPS, 2)
