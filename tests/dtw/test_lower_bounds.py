"""Unit tests for the DTW lower bounds (LB_Kim, LB_Yi, LB_Keogh)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    dtw_distance,
    dtw_windowed,
    keogh_envelope,
    lb_keogh,
    lb_kim,
    lb_yi,
)
from repro.exceptions import ValidationError


class TestLbKim:
    def test_lower_bounds_dtw(self, rng):
        for _ in range(20):
            x = rng.normal(size=int(rng.integers(2, 20)))
            y = rng.normal(size=int(rng.integers(2, 20)))
            assert lb_kim(x, y) <= dtw_distance(x, y) + 1e-9

    def test_identical_is_zero(self, rng):
        x = rng.normal(size=10)
        assert lb_kim(x, x) == 0.0

    def test_endpoints_counted(self):
        # First and last must align: bound is at least both endpoint costs.
        assert lb_kim([0.0, 0.0], [3.0, 4.0]) == pytest.approx(9.0 + 16.0)


class TestLbYi:
    def test_lower_bounds_dtw(self, rng):
        for _ in range(20):
            x = rng.normal(size=int(rng.integers(2, 20)))
            y = rng.normal(size=int(rng.integers(2, 20)))
            assert lb_yi(x, y) <= dtw_distance(x, y) + 1e-9

    def test_inside_range_is_zero(self):
        assert lb_yi([0.5, 0.6], [0.0, 1.0]) == 0.0

    def test_excess_counted(self):
        # 3 is 2 above max(y)=1: cost at least 4.
        assert lb_yi([3.0], [0.0, 1.0]) == pytest.approx(4.0)


class TestLbKeogh:
    def test_envelope_contains_query(self, rng):
        y = rng.normal(size=30)
        upper, lower = keogh_envelope(y, radius=3)
        assert np.all(upper >= y)
        assert np.all(lower <= y)

    def test_envelope_radius_zero_is_identity(self, rng):
        y = rng.normal(size=10)
        upper, lower = keogh_envelope(y, radius=0)
        np.testing.assert_allclose(upper, y)
        np.testing.assert_allclose(lower, y)

    def test_lower_bounds_banded_dtw(self, rng):
        for _ in range(20):
            n = int(rng.integers(4, 25))
            radius = int(rng.integers(0, 5))
            x = rng.normal(size=n)
            y = rng.normal(size=n)
            banded = dtw_windowed(x, y, constraint="sakoe_chiba", radius=radius)
            assert lb_keogh(x, y, radius) <= banded + 1e-9

    def test_requires_equal_lengths(self):
        with pytest.raises(ValidationError):
            lb_keogh([1.0, 2.0], [1.0], radius=1)

    def test_negative_radius_raises(self):
        with pytest.raises(ValidationError):
            keogh_envelope([1.0, 2.0], radius=-1)

    def test_wider_radius_loosens_bound(self, rng):
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        bounds = [lb_keogh(x, y, r) for r in (0, 2, 5, 10)]
        assert all(a >= b - 1e-12 for a, b in zip(bounds, bounds[1:]))
