"""Unit tests for cost-matrix construction and accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    accumulate_full,
    accumulate_subsequence,
    pairwise_cost_matrix,
)
from repro.exceptions import ValidationError


class TestPairwiseCostMatrix:
    def test_squared_costs(self):
        cost = pairwise_cost_matrix([1.0, 2.0], [0.0, 2.0])
        expected = np.array([[1.0, 1.0], [4.0, 0.0]])
        np.testing.assert_allclose(cost, expected)

    def test_absolute_costs(self):
        cost = pairwise_cost_matrix([1.0, 2.0], [0.0], local_distance="absolute")
        np.testing.assert_allclose(cost, [[1.0], [2.0]])

    def test_vector_costs_sum_over_dimensions(self):
        x = [[1.0, 1.0]]
        y = [[0.0, 0.0]]
        cost = pairwise_cost_matrix(x, y)
        np.testing.assert_allclose(cost, [[2.0]])

    def test_shape(self, rng):
        x = rng.normal(size=7)
        y = rng.normal(size=4)
        assert pairwise_cost_matrix(x, y).shape == (7, 4)


class TestAccumulateFull:
    def test_paper_equation1_structure(self):
        # Top-left must be the bare cost; first row accumulates right.
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        acc = accumulate_full(cost)
        assert acc[0, 0] == 1.0
        assert acc[0, 1] == 3.0  # 2 + f(1,1)
        assert acc[1, 0] == 4.0  # 3 + f(1,1)
        assert acc[1, 1] == 4.0 + min(3.0, 4.0, 1.0)

    def test_mask_excludes_cells(self):
        cost = np.ones((3, 3))
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        acc = accumulate_full(cost, mask)
        assert np.isinf(acc[1, 1])
        # A path still exists around the hole.
        assert np.isfinite(acc[2, 2])

    def test_all_masked_is_inf(self):
        cost = np.ones((2, 2))
        acc = accumulate_full(cost, np.zeros((2, 2), dtype=bool))
        assert np.isinf(acc).all()


class TestAccumulateSubsequence:
    def test_first_row_is_bare_cost(self, rng):
        cost = np.abs(rng.normal(size=(6, 4)))
        acc = accumulate_subsequence(cost)
        # d(t, 1) = cost: every tick can start fresh via the star row.
        np.testing.assert_allclose(acc[:, 0], cost[:, 0])

    def test_last_row_minimum_matches_best_subsequence(self, rng):
        from repro.dtw import brute_force_best

        x = rng.normal(size=12)
        y = rng.normal(size=4)
        cost = pairwise_cost_matrix(x, y)
        acc = accumulate_subsequence(cost)
        best_distance, _, _ = brute_force_best(x, y)
        assert acc[:, -1].min() == pytest.approx(best_distance, rel=1e-9)

    def test_subsequence_never_exceeds_full(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=5)
        cost = pairwise_cost_matrix(x, y)
        full = accumulate_full(cost)
        sub = accumulate_subsequence(cost)
        # A subsequence alignment can only be cheaper than the full one
        # ending at the same cell.
        assert np.all(sub <= full + 1e-12)

    def test_paper_figure5_matrix(self):
        """Cell-for-cell check of the worked example in Figure 5."""
        x = [5, 12, 6, 10, 6, 5, 13]
        y = [11, 6, 9, 4]
        acc = accumulate_subsequence(pairwise_cost_matrix(x, y))
        expected = np.array(
            [
                # y1=11, y2=6, y3=9, y4=4 per stream tick
                [36, 37, 53, 54],
                [1, 37, 46, 110],
                [25, 1, 10, 14],
                [1, 17, 2, 38],
                [25, 1, 10, 6],
                [36, 2, 17, 7],
                [4, 51, 18, 88],
            ],
            dtype=np.float64,
        )
        np.testing.assert_allclose(acc, expected)
