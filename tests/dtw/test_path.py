"""Unit tests for warping-path recovery and utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    accumulate_full,
    accumulate_subsequence,
    backtrack_path,
    dtw_distance,
    is_valid_path,
    pairwise_cost_matrix,
    path_cost,
    warp_amount,
)
from repro.exceptions import ValidationError


class TestBacktrack:
    def test_path_realises_the_distance(self, rng):
        for _ in range(5):
            x = rng.normal(size=int(rng.integers(3, 15)))
            y = rng.normal(size=int(rng.integers(3, 15)))
            cost = pairwise_cost_matrix(x, y)
            acc = accumulate_full(cost)
            path = backtrack_path(acc)
            assert is_valid_path(path, *cost.shape)
            assert path_cost(path, cost) == pytest.approx(acc[-1, -1], rel=1e-9)

    def test_identical_sequences_give_diagonal(self):
        x = [1.0, 2.0, 3.0]
        acc = accumulate_full(pairwise_cost_matrix(x, x))
        path = backtrack_path(acc)
        assert path == [(0, 0), (1, 1), (2, 2)]
        assert warp_amount(path) == 0

    def test_subsequence_path_starts_mid_stream(self, rng):
        # Plant the exact query mid-stream: the path should start there.
        y = np.array([1.0, 5.0, 2.0])
        x = np.concatenate([np.full(4, 50.0), y, np.full(4, 50.0)])
        acc = accumulate_subsequence(pairwise_cost_matrix(x, y))
        end = int(np.argmin(acc[:, -1]))
        path = backtrack_path(acc, (end, 2))
        assert is_valid_path(path, x.shape[0], 3, subsequence=True)
        assert path[0] == (4, 0)
        assert path[-1] == (6, 2)

    def test_infinite_end_raises(self):
        acc = np.full((2, 2), np.inf)
        with pytest.raises(ValidationError):
            backtrack_path(acc)

    def test_out_of_range_end_raises(self):
        acc = np.zeros((2, 2))
        with pytest.raises(ValidationError):
            backtrack_path(acc, (5, 0))


class TestPathValidity:
    def test_rejects_gaps(self):
        assert not is_valid_path([(0, 0), (2, 1)], 3, 2)

    def test_rejects_wrong_endpoints(self):
        assert not is_valid_path([(0, 0), (1, 0)], 2, 2)

    def test_rejects_empty(self):
        assert not is_valid_path([], 1, 1)

    def test_subsequence_flag_relaxes_start_row(self):
        path = [(3, 0), (4, 1)]
        assert is_valid_path(path, 6, 2, subsequence=True)
        assert not is_valid_path(path, 6, 2, subsequence=False)

    def test_warp_amount_counts_non_diagonal(self):
        path = [(0, 0), (1, 0), (2, 1), (2, 2)]
        assert warp_amount(path) == 2
