"""Unit tests for the stored-set search with lower-bound pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import dtw_distance, dtw_windowed
from repro.dtw.search import SequenceIndex
from repro.exceptions import ValidationError


def _library(rng, count=30, length=25):
    return [rng.normal(size=length) + rng.uniform(-3, 3) for _ in range(count)]


class TestNearest:
    def test_empty_index_raises(self):
        with pytest.raises(ValidationError):
            SequenceIndex().nearest([1.0])

    def test_exact_vs_linear_scan(self, rng):
        library = _library(rng)
        index = SequenceIndex()
        for i, seq in enumerate(library):
            index.add(seq, label=i)
        for _ in range(5):
            query = rng.normal(size=25)
            distance, label, stats = index.nearest(query)
            brute = min(
                (dtw_distance(query, seq), i) for i, seq in enumerate(library)
            )
            assert distance == pytest.approx(brute[0], rel=1e-9)
            assert dtw_distance(query, library[label]) == pytest.approx(
                brute[0], rel=1e-9
            )
            assert stats.candidates == len(library)

    def test_pruning_happens(self, rng):
        # A library with one near-duplicate of the query and many far
        # sequences: the bounds must prune most full computations.
        query = rng.normal(size=20)
        index = SequenceIndex()
        index.add(query + rng.normal(0, 0.01, 20), label="near")
        for _ in range(40):
            index.add(rng.normal(size=20) + 50.0)
        distance, label, stats = index.nearest(query)
        assert label == "near"
        assert stats.prune_rate > 0.8
        assert stats.full_computations < 10

    def test_banded_search_exact(self, rng):
        library = _library(rng, count=15, length=20)
        index = SequenceIndex(band_radius=3)
        index.extend(library)
        query = rng.normal(size=20)
        distance, label, stats = index.nearest(query)
        brute = min(
            dtw_windowed(query, seq, radius=3) for seq in library
        )
        assert distance == pytest.approx(brute, rel=1e-9)

    def test_bad_band_radius(self):
        with pytest.raises(ValidationError):
            SequenceIndex(band_radius=-1)


class TestBestSubsequence:
    """The conclusion's claim: SPRING applies to stored sets too."""

    def test_finds_planted_subsequence(self, rng):
        query = rng.normal(size=8)
        index = SequenceIndex()
        index.add(rng.normal(size=40) + 9, label="miss-1")
        host = np.concatenate(
            [rng.normal(size=15) + 9, query, rng.normal(size=15) + 9]
        )
        index.add(host, label="hit")
        index.add(rng.normal(size=40) + 9, label="miss-2")
        distance, label, (start, end) = index.best_subsequence(query)
        assert label == "hit"
        assert distance == pytest.approx(0.0, abs=1e-12)
        assert (start, end) == (16, 23)

    def test_agrees_with_brute_force(self, rng):
        from repro.dtw import brute_force_best

        library = [rng.normal(size=12) for _ in range(6)]
        index = SequenceIndex()
        for i, seq in enumerate(library):
            index.add(seq, label=i)
        query = rng.normal(size=4)
        distance, label, _ = index.best_subsequence(query)
        brute = min(brute_force_best(seq, query)[0] for seq in library)
        assert distance == pytest.approx(brute, rel=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            SequenceIndex().best_subsequence([1.0])


class TestRangeSearch:
    def test_finds_all_within_epsilon(self, rng):
        library = _library(rng, count=25, length=15)
        index = SequenceIndex()
        index.extend(library)
        query = rng.normal(size=15)
        epsilon = float(
            np.median([dtw_distance(query, seq) for seq in library])
        )
        hits, stats = index.range_search(query, epsilon)
        brute = sorted(
            d for seq in library if (d := dtw_distance(query, seq)) <= epsilon
        )
        assert [h[0] for h in hits] == pytest.approx(brute, rel=1e-9)

    def test_sorted_ascending(self, rng):
        index = SequenceIndex()
        index.extend(_library(rng, count=10, length=10))
        hits, _ = index.range_search(rng.normal(size=10), 1e9)
        distances = [h[0] for h in hits]
        assert distances == sorted(distances)

    def test_negative_epsilon_raises(self, rng):
        index = SequenceIndex()
        index.add([1.0])
        with pytest.raises(ValidationError):
            index.range_search([1.0], -1.0)

    def test_stats_counters_consistent(self, rng):
        index = SequenceIndex()
        index.extend(_library(rng, count=20, length=12))
        _, stats = index.range_search(rng.normal(size=12) + 30, 0.5)
        assert stats.candidates == 20
        assert stats.pruned_total + stats.full_computations == 20
