"""Unit tests for generalised step patterns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import dtw_distance, pairwise_cost_matrix
from repro.dtw.step_patterns import (
    STEP_PATTERNS,
    accumulate_with_pattern,
    dtw_with_pattern,
)
from repro.exceptions import ValidationError


class TestSymmetric1:
    def test_matches_paper_recurrence(self, rng):
        for _ in range(5):
            x = rng.normal(size=int(rng.integers(2, 12)))
            y = rng.normal(size=int(rng.integers(2, 12)))
            assert dtw_with_pattern(x, y, "symmetric1") == pytest.approx(
                dtw_distance(x, y), rel=1e-12
            )


class TestSymmetric2:
    def test_at_least_symmetric1(self, rng):
        # Doubling the diagonal weight can only increase the optimum.
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        assert dtw_with_pattern(x, y, "symmetric2") >= dtw_with_pattern(
            x, y, "symmetric1"
        ) - 1e-12

    def test_identical_sequences(self, rng):
        x = rng.normal(size=8)
        # Perfect diagonal: every cell cost 0, so weight is irrelevant.
        assert dtw_with_pattern(x, x, "symmetric2") == pytest.approx(0.0)

    def test_normalisation(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=6)
        raw = dtw_with_pattern(x, y, "symmetric2")
        normed = dtw_with_pattern(x, y, "symmetric2", normalize=True)
        assert normed == pytest.approx(raw / 16)


class TestAsymmetric:
    def test_consumes_every_data_tick(self):
        # With steps (1,0),(1,1),(1,2), a path exists iff m <= 2n and
        # the path has exactly n cells.
        cost = np.ones((4, 4))
        acc = accumulate_with_pattern(cost, "asymmetric")
        assert acc[-1, -1] == pytest.approx(4.0)  # 4 cells, weight 1

    def test_infeasible_when_query_too_long(self):
        # n=2 data ticks cannot cover m=5 query elements (max 2 per step).
        cost = np.ones((2, 5))
        acc = accumulate_with_pattern(cost, "asymmetric")
        assert np.isinf(acc[-1, -1])


class TestCustomPatterns:
    def test_custom_steps(self, rng):
        x = rng.normal(size=6)
        y = rng.normal(size=6)
        custom = ((0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0))
        assert dtw_with_pattern(x, y, custom) == pytest.approx(
            dtw_distance(x, y), rel=1e-12
        )

    def test_rejects_zero_step(self):
        with pytest.raises(ValidationError):
            accumulate_with_pattern(np.ones((2, 2)), (((0, 0, 1.0)),))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            accumulate_with_pattern(np.ones((2, 2)), ())

    def test_rejects_unknown_name(self):
        with pytest.raises(ValidationError):
            dtw_with_pattern([1.0], [1.0], "sakoe99")

    def test_rejects_negative_weight(self):
        with pytest.raises(ValidationError):
            accumulate_with_pattern(np.ones((2, 2)), ((1, 1, -1.0),))


class TestRegistry:
    def test_known_patterns_present(self):
        assert set(STEP_PATTERNS) == {
            "symmetric1",
            "symmetric2",
            "asymmetric",
        }
