"""Unit tests for offline subsequence DTW (star-padding, batch form)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    all_ending_distances,
    best_subsequence,
    brute_force_all,
    brute_force_best,
    dtw_distance,
    is_valid_path,
    subsequence_matrix,
)


class TestTheorem1:
    """Theorem 1: star-padded DTW == min over all subsequences."""

    def test_small_random_instances(self, rng):
        for _ in range(8):
            n = int(rng.integers(3, 18))
            m = int(rng.integers(2, 6))
            x = rng.normal(size=n)
            y = rng.normal(size=m)
            star = float(subsequence_matrix(x, y)[:, -1].min())
            brute, _, _ = brute_force_best(x, y)
            assert star == pytest.approx(brute, rel=1e-9)

    def test_positions_match_brute_force(self, rng):
        for _ in range(5):
            x = rng.normal(size=14)
            y = rng.normal(size=4)
            d, start, end, path = best_subsequence(x, y)
            bd, bs, be = brute_force_best(x, y)
            assert d == pytest.approx(bd, rel=1e-9)
            assert (start, end) == (bs, be)
            assert is_valid_path(path, 14, 4, subsequence=True)

    def test_exact_query_embedded(self, rng):
        y = rng.normal(size=5)
        x = np.concatenate([rng.normal(size=7) + 10, y, rng.normal(size=6) + 10])
        d, start, end, _ = best_subsequence(x, y)
        assert d == pytest.approx(0.0, abs=1e-12)
        assert (start, end) == (7, 11)


class TestEndingDistances:
    def test_length_matches_stream(self, rng):
        x = rng.normal(size=23)
        y = rng.normal(size=6)
        assert all_ending_distances(x, y).shape == (23,)

    def test_each_entry_is_min_over_starts(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=3)
        endings = all_ending_distances(x, y)
        table = brute_force_all(x, y)
        for te in range(10):
            assert endings[te] == pytest.approx(table[: te + 1, te].min(), rel=1e-9)


class TestBruteForce:
    def test_all_table_diagonal_is_single_element(self, rng):
        x = rng.normal(size=6)
        y = rng.normal(size=3)
        table = brute_force_all(x, y)
        for t in range(6):
            assert table[t, t] == pytest.approx(dtw_distance(x[t : t + 1], y))

    def test_upper_triangle_only(self, rng):
        x = rng.normal(size=5)
        y = rng.normal(size=2)
        table = brute_force_all(x, y)
        assert np.isinf(table[np.tril_indices(5, k=-1)]).all()
