"""Unit tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw import (
    accumulate_full,
    backtrack_path,
    pairwise_cost_matrix,
)
from repro.dtw.visualize import (
    figure5_style,
    render_alignment,
    render_matrix,
    render_path,
)
from repro.exceptions import ValidationError


class TestRenderMatrix:
    def test_contains_all_values(self, rng):
        acc = accumulate_full(pairwise_cost_matrix([1.0, 2.0], [1.0, 3.0]))
        text = render_matrix(acc, precision=6)
        for value in np.asarray(acc).ravel():
            assert f"{value:.6g}" in text

    def test_path_bracketed(self):
        cost = pairwise_cost_matrix([1.0, 2.0], [1.0, 2.0])
        acc = accumulate_full(cost)
        path = backtrack_path(acc)
        text = render_matrix(acc, path=path)
        assert "[" in text and "]" in text

    def test_size_cap(self):
        with pytest.raises(ValidationError):
            render_matrix(np.zeros((100, 100)), max_cells=100)

    def test_inf_rendered(self):
        matrix = np.array([[np.inf, 1.0]])
        assert "inf" in render_matrix(matrix)


class TestFigure5Style:
    def test_matches_paper_figure(self):
        text = figure5_style([5, 12, 6, 10, 6, 5, 13], [11, 6, 9, 4])
        # Spot-check distinctive cells from the paper's Figure 5.
        assert "110 (2)" in text   # d(2,4) = 110 starting at 2
        assert "6 (2)" in text     # d(5,4) = 6 starting at 2
        assert "88 (2)" in text    # d(7,4) = 88 starting at 2
        assert "y4=4" in text

    def test_size_cap(self, rng):
        with pytest.raises(ValidationError):
            figure5_style(rng.normal(size=100), rng.normal(size=50))


class TestRenderPath:
    def test_marks_cells(self):
        text = render_path([(0, 0), (1, 1)], 2, 2)
        lines = text.splitlines()
        assert lines[0] == ".#"  # i=2 row on top
        assert lines[1] == "#."

    def test_size_cap(self):
        with pytest.raises(ValidationError):
            render_path([], 100, 100, max_cells=10)


class TestRenderAlignment:
    def test_auto_path(self, rng):
        y = np.array([1.0, 5.0, 2.0])
        x = np.concatenate([np.full(3, 40.0), y, np.full(3, 40.0)])
        text = render_alignment(x, y)
        lines = text.splitlines()
        assert len(lines) == 1 + 3  # header + one pair per query element
        assert "0" in lines[1]  # zero local differences on the exact hit

    def test_explicit_path(self):
        text = render_alignment([1.0, 2.0], [1.0, 2.0], path=[(0, 0), (1, 1)])
        assert len(text.splitlines()) == 3

    def test_length_cap(self, rng):
        with pytest.raises(ValidationError):
            render_alignment(
                rng.normal(size=300), rng.normal(size=300), max_pairs=10
            )
