"""Integration tests: every experiment driver runs and hits its claims.

These are the fast versions of the benchmark suite — small scales, but
the same code paths, asserting the *shape* results the paper reports.
"""

from __future__ import annotations

import pytest

from repro.eval import get_experiment, list_experiments
from repro.exceptions import ExperimentError


class TestRegistry:
    def test_all_experiments_registered(self):
        names = list_experiments()
        for expected in ("fig6", "table2", "fig7", "fig8", "fig9", "ablations"):
            assert expected in names

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestFig1:
    def test_both_sinusoids_found(self):
        result = get_experiment("fig1")(scale=0.3, seed=0)
        assert result.summary["both_found"] is True
        assert len(result.rows) == 2


class TestFig6:
    def test_perfect_detection_at_test_scale(self):
        result = get_experiment("fig6")(scale=0.2, seed=0)
        assert result.summary["all_perfect"] is True
        assert len(result.rows) == 4

    def test_single_dataset_restriction(self):
        result = get_experiment("fig6")(scale=0.2, seed=0, dataset="chirp")
        assert len(result.rows) == 1
        assert result.rows[0][0] == "MaskedChirp"

    def test_render_produces_table(self):
        result = get_experiment("fig6")(scale=0.2, seed=0, dataset="chirp")
        text = result.render()
        assert "MaskedChirp" in text and "precision" in text


class TestTable2:
    def test_output_time_never_before_end(self):
        result = get_experiment("table2")(scale=0.2, seed=0)
        delay_column = result.headers.index("delay")
        for row in result.rows:
            assert row[delay_column] >= 0

    def test_reports_exist(self):
        result = get_experiment("table2")(scale=0.2, seed=0)
        assert result.summary["matches"] >= 7  # 4+2+1+cycles at this scale


class TestFig7:
    def test_shape_naive_linear_spring_flat(self):
        result = get_experiment("fig7")(
            scale=0.002, seed=0, lengths=[500, 2000], measure_ticks=10
        )
        slope = result.summary["naive_slope_ms_per_n"]
        spring_ms = result.summary["spring_ms_median"]
        assert slope > 0
        # Naive at n=2000 must already dominate SPRING clearly.
        assert result.summary["measured_max_speedup"] > 20
        # SPRING per-tick time does not grow 4x when n grows 4x.
        assert result.summary["spring_flat_ratio"] < 4.0
        assert spring_ms < 1.0  # well under a millisecond per tick


class TestFig8:
    def test_shape_memory_ordering(self):
        result = get_experiment("fig8")(
            scale=0.002, seed=0, lengths=[500, 2000]
        )
        assert result.summary["spring_bytes_constant"] is True
        naive_last = result.rows[-1][1]
        path_last = result.rows[-1][2]
        spring_last = result.rows[-1][3]
        assert spring_last < path_last < naive_last

    def test_naive_bytes_track_n_times_m(self):
        result = get_experiment("fig8")(
            scale=0.002, seed=0, lengths=[500, 1000]
        )
        # m = 256; per matrix one float64 column + an int64 start.
        per_n = result.summary["naive_bytes_per_n"]
        assert per_n == pytest.approx(256 * 8 + 8, rel=0.05)


class TestFig9:
    def test_all_motions_found_no_cross_fires(self):
        result = get_experiment("fig9")(scale=0.3, seed=0, channels=12)
        assert result.summary["motions_in_session"] == 7
        assert result.summary["all_found_by_own_query"] is True
        assert result.summary["cross_fires"] == 0


class TestMultistream:
    def test_per_stream_cost_flat(self):
        result = get_experiment("multistream")(
            scale=0.1, seed=0, stream_counts=[1, 4], ticks=120
        )
        assert result.summary["per_stream_flatness"] < 3.0
        assert len(result.rows) == 2


class TestEcgCase:
    def test_spring_invariant_to_heart_rate(self):
        result = get_experiment("ecg")(scale=0.5, seed=0)
        assert result.summary["spring_min_f1"] == 1.0
        assert result.summary["rigid_mean_f1_at_hrv"] < 0.7


class TestRobustness:
    def test_spring_holds_rigid_collapses(self):
        result = get_experiment("robustness")(
            scale=0.15,
            seed=0,
            noise_levels=[0.05, 0.15],
            stretches=[1.0, 1.5],
        )
        assert result.summary["spring_min_f1"] == 1.0
        assert result.summary["rigid_mean_f1_when_stretched"] < 0.5


class TestResilience:
    def test_chaos_suite_green(self):
        result = get_experiment("resilience")(scale=0.05, seed=0)
        assert result.summary["all_exact"] is True
        assert result.summary["dead_letters"] > 0
        # Every injector row reports exact recovery and isolation.
        injectors = {row[0] for row in result.rows}
        assert injectors == {
            "none", "flaky", "drop", "duplicate", "corrupt", "stall"
        }
        for row in result.rows:
            assert row[4] == "yes" and row[5] == "yes"


class TestAblations:
    def test_headline_claims(self):
        result = get_experiment("ablations")(scale=0.12, seed=0)
        assert result.summary["deferred_perfect"] is True
        assert result.summary["eager_mean_distance_worse"] is True
        assert result.summary["rigid_recall"] < result.summary["spring_recall"]
        assert result.summary["absolute_distance_recall"] == 1.0
