"""Unit tests for the experiment harness and registry."""

from __future__ import annotations

import pytest

from repro.eval.harness import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
)
from repro.exceptions import ExperimentError


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            experiment="demo",
            title="Demo Title",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            summary={"key": "value"},
            notes=["a caveat"],
        )
        text = result.render()
        assert "Demo Title" in text
        assert "key: value" in text
        assert "note: a caveat" in text
        assert "2.5" in text

    def test_render_without_summary_or_notes(self):
        result = ExperimentResult(
            experiment="demo", title="T", headers=["x"], rows=[[1]]
        )
        text = result.render()
        assert "summary" not in text
        assert "note" not in text


class TestRegistry:
    def test_register_and_lookup(self):
        @register("_test_only_experiment")
        def fake(scale=1.0, seed=0):
            return ExperimentResult(
                experiment="_test_only_experiment",
                title="t",
                headers=["x"],
                rows=[[scale]],
            )

        found = get_experiment("_test_only_experiment")
        assert found(scale=2.0).rows == [[2.0]]

    def test_list_contains_all_paper_experiments(self):
        names = list_experiments()
        for expected in (
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table2",
            "ablations",
            "multistream",
            "robustness",
            "resilience",
        ):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ExperimentError, match="available"):
            get_experiment("fig42")
