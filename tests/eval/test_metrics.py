"""Unit tests for detection scoring and epsilon calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Match
from repro.datasets import masked_chirp
from repro.eval import DetectionScore, calibrate_epsilon, jaccard, score_matches
from repro.exceptions import ValidationError


def _match(start, end, distance=1.0):
    return Match(start=start, end=end, distance=distance)


class TestJaccard:
    def test_identical(self):
        assert jaccard((1, 10), (1, 10)) == 1.0

    def test_disjoint(self):
        assert jaccard((1, 5), (6, 10)) == 0.0

    def test_half_overlap(self):
        # (1..4) vs (3..6): intersection 2, union 6.
        assert jaccard((1, 4), (3, 6)) == pytest.approx(2 / 6)

    def test_symmetry(self):
        assert jaccard((2, 9), (5, 20)) == jaccard((5, 20), (2, 9))


class TestScoreMatches:
    def test_perfect(self):
        truth = [(10, 20), (40, 50)]
        matches = [_match(11, 19), _match(41, 52)]
        score = score_matches(matches, truth)
        assert score.perfect
        assert score.precision == 1.0 and score.recall == 1.0

    def test_false_positive(self):
        score = score_matches([_match(100, 110)], [(10, 20)])
        assert score.false_positives == 1
        assert score.false_negatives == 1
        assert score.precision == 0.0 and score.recall == 0.0

    def test_each_occurrence_claimed_once(self):
        # Two matches over one occurrence: second is a false positive.
        truth = [(10, 30)]
        score = score_matches([_match(10, 20), _match(21, 30)], truth)
        assert score.true_positives == 1
        assert score.false_positives == 1

    def test_min_jaccard_gate(self):
        truth = [(1, 100)]
        skinny = [_match(1, 2)]
        loose = score_matches(skinny, truth, min_jaccard=0.0)
        strict = score_matches(skinny, truth, min_jaccard=0.5)
        assert loose.true_positives == 1
        assert strict.true_positives == 0

    def test_bad_jaccard_raises(self):
        with pytest.raises(ValidationError):
            score_matches([], [], min_jaccard=2.0)

    def test_empty_cases(self):
        assert score_matches([], []).perfect
        assert score_matches([], [(1, 2)]).recall == 0.0
        assert score_matches([_match(1, 2)], []).precision == 0.0

    def test_f1(self):
        score = DetectionScore(true_positives=1, false_positives=1,
                               false_negatives=0)
        assert score.f1 == pytest.approx(2 / 3)


class TestCalibrateEpsilon:
    def test_calibrated_threshold_detects_cleanly(self):
        from repro.core import spring_search

        data = masked_chirp(n=4000, query_length=300, bursts=3, seed=11)
        epsilon = calibrate_epsilon(data)
        matches = spring_search(data.values, data.query, epsilon)
        score = score_matches(matches, data.occurrence_intervals())
        assert score.perfect

    def test_sits_between_clusters(self):
        data = masked_chirp(n=4000, query_length=300, bursts=3, seed=12)
        epsilon = calibrate_epsilon(data)
        # All planted occurrences must be reachable below epsilon and
        # the generator's own suggestion should be the same order.
        assert 0.05 < epsilon / data.suggested_epsilon < 20
