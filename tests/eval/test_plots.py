"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.eval.plots import ascii_chart
from repro.exceptions import ValidationError


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [
                ("naive", [(1e3, 1.0), (1e4, 10.0), (1e5, 100.0)]),
                ("spring", [(1e3, 0.05), (1e4, 0.05), (1e5, 0.05)]),
            ],
            title="Figure 7",
        )
        assert "Figure 7" in chart
        assert "o = naive" in chart
        assert "x = spring" in chart
        assert "1e+03" in chart or "1e+05" in chart or "1e" in chart

    def test_markers_placed(self):
        chart = ascii_chart([("s", [(1.0, 1.0), (100.0, 100.0)])])
        assert chart.count("o") >= 2 + 1  # two points + legend

    def test_flat_series_renders(self):
        chart = ascii_chart([("flat", [(1.0, 5.0), (10.0, 5.0)])])
        assert "flat" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ascii_chart([])
        with pytest.raises(ValidationError):
            ascii_chart([("empty", [])])

    def test_rejects_nonpositive_on_log_scale(self):
        with pytest.raises(ValidationError):
            ascii_chart([("bad", [(0.0, 1.0)])], log_x=True)

    def test_linear_scales_accept_zero(self):
        chart = ascii_chart(
            [("ok", [(0.0, 0.0), (1.0, 1.0)])], log_x=False, log_y=False
        )
        assert "ok" in chart

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValidationError):
            ascii_chart([("s", [(1.0, 1.0)])], width=4, height=2)
