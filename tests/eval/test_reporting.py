"""Unit tests for ASCII report formatting."""

from __future__ import annotations

from repro.eval import format_ratio, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 6 for line in lines)

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.00001], [3.5]])
        assert "e+06" in text
        assert "e-05" in text
        assert "3.5" in text

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestFormatSeries:
    def test_series_is_table(self):
        text = format_series("n", ["naive", "spring"], [[10, 1.0, 0.1]])
        assert "naive" in text and "spring" in text


class TestFormatRatio:
    def test_large(self):
        assert format_ratio(650000.0, 1.0) == "650,000x"

    def test_small(self):
        assert format_ratio(3.0, 2.0) == "1.5x"

    def test_zero_denominator(self):
        assert format_ratio(1.0, 0.0) == "inf"
