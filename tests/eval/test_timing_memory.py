"""Unit tests for timing measurement and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NaiveSubsequenceMatcher
from repro.core import Spring
from repro.eval import (
    measure_matcher_at_length,
    naive_state_bytes,
    spring_state_bytes,
    state_bytes,
    time_per_tick,
)
from repro.eval.memory import BYTES_PER_PATH_NODE
from repro.exceptions import ValidationError


class TestTiming:
    def test_time_per_tick_counts(self, rng):
        spring = Spring(rng.normal(size=8))
        timing = time_per_tick(spring.step, list(rng.normal(size=20)))
        assert timing.ticks_measured == 20
        assert timing.mean_seconds > 0
        assert timing.p95_seconds >= timing.p50_seconds

    def test_warmup_advances_matcher(self, rng):
        spring = Spring(rng.normal(size=4))
        time_per_tick(
            spring.step,
            list(rng.normal(size=5)),
            warmup_values=list(rng.normal(size=10)),
        )
        assert spring.tick == 15

    def test_empty_values_raise(self, rng):
        spring = Spring([1.0])
        with pytest.raises(ValidationError):
            time_per_tick(spring.step, [])

    def test_measure_at_length(self, rng):
        stream = rng.normal(size=100)
        timing = measure_matcher_at_length(
            lambda: Spring(rng.normal(size=4)), stream, 50, measure_ticks=10
        )
        assert timing.n == 50
        assert timing.ticks_measured == 10

    def test_length_beyond_stream_raises(self, rng):
        with pytest.raises(ValidationError):
            measure_matcher_at_length(
                lambda: Spring([1.0]), rng.normal(size=10), 50
            )


class TestMemoryAccounting:
    def test_spring_state_is_constant(self, rng):
        spring = Spring(rng.normal(size=16))
        before = spring_state_bytes(spring)
        spring.extend(rng.normal(size=500))
        assert spring_state_bytes(spring) == before
        # Two (m+1)-arrays of 8 bytes each.
        assert before == 2 * 17 * 8

    def test_naive_state_grows_linearly(self, rng):
        naive = NaiveSubsequenceMatcher(rng.normal(size=8))
        naive.extend(rng.normal(size=100))
        at_100 = naive_state_bytes(naive)
        naive.extend(rng.normal(size=100))
        at_200 = naive_state_bytes(naive)
        assert at_200 == pytest.approx(2 * at_100, rel=0.05)

    def test_path_variant_counts_nodes(self, rng):
        spring = Spring(rng.normal(size=8), record_path=True)
        spring.extend(rng.normal(size=50))
        with_paths = spring_state_bytes(spring)
        without = spring_state_bytes(spring, include_paths=False)
        assert with_paths >= without
        assert (with_paths - without) % BYTES_PER_PATH_NODE == 0

    def test_dispatch(self, rng):
        assert state_bytes(Spring([1.0])) > 0
        assert state_bytes(NaiveSubsequenceMatcher([1.0])) == 0
        with pytest.raises(ValidationError):
            state_bytes(object())
