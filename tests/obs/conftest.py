"""Shared fixtures for the observability suite."""

from __future__ import annotations

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tracing is process-global state; never let a test leak it."""
    assert tracing.ACTIVE is None, "a previous test leaked an active tracer"
    yield
    tracing.ACTIVE = None
