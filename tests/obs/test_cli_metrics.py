"""CLI metrics export and the hot-path profiler script."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.obs.prometheus import parse

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def stream_csv(tmp_path, rng):
    pattern = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
    values = np.concatenate(
        [rng.normal(size=30) + 8, pattern, rng.normal(size=30) + 8]
    )
    query_path = tmp_path / "query.csv"
    stream_path = tmp_path / "stream.csv"
    np.savetxt(query_path, pattern, delimiter=",")
    np.savetxt(stream_path, values, delimiter=",")
    return query_path, stream_path, len(values)


class TestMonitorMetricsFlag:
    def test_unsupervised_writes_parseable_prometheus(
        self, stream_csv, tmp_path, capsys
    ):
        query_path, stream_path, ticks = stream_csv
        out = tmp_path / "metrics.prom"
        code = main(
            [
                "monitor", str(stream_path), str(query_path),
                "--epsilon", "2.0", "--no-header",
                "--metrics-out", str(out),
                "--metrics-every", "10",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "match #" in captured
        assert f"wrote metrics to {out}" in captured

        families = parse(out.read_text())
        tick_samples = families["spring_stream_ticks_total"]
        assert tick_samples == [
            ("spring_stream_ticks_total", {"stream": "stream"}, float(ticks))
        ]
        assert "spring_matches_total" in families
        assert "spring_push_latency_seconds" in families
        matcher_ticks = families["spring_matcher_ticks_total"]
        assert matcher_ticks[0][1] == {"query": "query", "stream": "stream"}
        assert matcher_ticks[0][2] == float(ticks)

    def test_match_lines_identical_with_and_without_metrics(
        self, stream_csv, tmp_path, capsys
    ):
        query_path, stream_path, _ticks = stream_csv
        base = ["monitor", str(stream_path), str(query_path), "--epsilon", "2.0"]
        assert main(base) == 0
        plain = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("match #")
        ]
        out = tmp_path / "m.prom"
        assert main(base + ["--metrics-out", str(out)]) == 0
        metered = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("match #")
        ]
        assert plain == metered
        assert plain  # the scripted stream must produce a match

    def test_supervised_run_exports_runtime_series(
        self, stream_csv, tmp_path, capsys
    ):
        query_path, stream_path, ticks = stream_csv
        out = tmp_path / "metrics.prom"
        code = main(
            [
                "monitor", str(stream_path), str(query_path),
                "--epsilon", "2.0", "--no-header",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--checkpoint-every", "20",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        families = parse(out.read_text())
        assert "spring_stream_ticks_total" in families
        writes = {
            name: value
            for name, _labels, value in families["spring_checkpoint_write_seconds"]
            if name.endswith("_count")
        }
        assert writes["spring_checkpoint_write_seconds_count"] >= 1


class TestProfileScript:
    def _run(self, *extra):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        return subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "profile_hotpath.py"),
                "--ticks", "300", "--queries", "4", *extra,
            ],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_table_output_breaks_down_stages(self):
        result = self._run("--mixed")
        assert result.returncode == 0, result.stderr
        assert "kernel" in result.stdout
        assert "policy" in result.stdout
        assert "share" in result.stdout

    def test_json_output_is_machine_readable(self, tmp_path):
        report_path = tmp_path / "profile.json"
        result = self._run("--json", str(report_path))
        assert result.returncode == 0, result.stderr
        report = json.loads(report_path.read_text())
        assert report["config"]["ticks"] == 300
        assert report["spans_dropped"] == 0
        stages = {stage["stage"]: stage for stage in report["stages"]}
        # Auto backend selection decides which kernel stage carries the
        # ticks: "kernel" (numpy column updates) or "compiled kernel"
        # (fused bank kernel spans) — exactly one must have run.
        kernel_stage = stages.get("kernel") or stages.get("compiled kernel")
        assert kernel_stage is not None and kernel_stage["calls"] > 0
        total_share = sum(stage["share"] for stage in report["stages"])
        assert total_share == pytest.approx(1.0, abs=1e-6)
