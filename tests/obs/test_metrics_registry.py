"""Metrics primitives: counters, gauges, histograms, registry semantics."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    merge_snapshot,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValidationError, match="monotone"):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("stream",))
        counter.labels(stream="a").inc(3)
        counter.labels(stream="b").inc(5)
        assert counter.labels(stream="a").value == 3
        assert counter.labels(stream="b").value == 5

    def test_labelless_use_of_labelled_family_rejected(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("stream",))
        with pytest.raises(ValidationError, match="labels"):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("stream",))
        with pytest.raises(ValidationError, match="expected labels"):
            counter.labels(strm="a")

    def test_set_to_never_lowers(self):
        child = MetricsRegistry().counter(
            "c_total", labelnames=("q",)
        ).labels(q="x")
        child.set_to(10.0)
        child.set_to(4.0)  # stale collector read must not regress
        assert child.value == 10.0
        child.set_to(12.0)
        assert child.value == 12.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc(1.5)
        gauge.dec(0.5)
        assert gauge.value == 5.0

    def test_gauge_may_go_negative(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.dec(2)
        assert gauge.value == -2


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.1, 0.5, 5.0, 50.0):
            histogram.observe(value)
        series = histogram.snapshot()["series"][0]
        # le=0.1 is inclusive: 0.05 and 0.1 land in the first bucket.
        assert series["bucket_counts"] == [2, 1, 1, 1]
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(55.65)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS)
        )

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValidationError, match="increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("stream",))
        second = registry.counter("c_total", "ignored", ("stream",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValidationError, match="already registered"):
            registry.gauge("metric")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric", labelnames=("a",))
        with pytest.raises(ValidationError, match="already registered"):
            registry.counter("metric", labelnames=("b",))

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("s",)).labels(s="x").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(2e-4)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        assert round_tripped["c_total"]["type"] == "counter"
        assert round_tripped["h_seconds"]["series"][0]["count"] == 1

    def test_collector_runs_on_snapshot(self):
        registry = MetricsRegistry()
        calls = []

        def collector(reg):
            calls.append(reg)
            reg.gauge("collected").set(7.0)

        registry.add_collector(collector)
        snapshot = registry.snapshot()
        assert calls == [registry]
        assert snapshot["collected"]["series"][0]["value"] == 7.0

    def test_snapshot_monotonicity_of_counters(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", labelnames=("s",))
        previous = 0.0
        for round_ticks in (3, 0, 10, 1):
            for _ in range(round_ticks):
                counter.labels(s="a").inc()
            snapshot = registry.snapshot()
            value = snapshot["ticks_total"]["series"][0]["value"]
            assert value >= previous
            previous = value

    def test_concurrent_interleaving_is_exact(self):
        """4 threads x 10k increments: the single-lock design loses none."""
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("t",))
        histogram = registry.histogram("h_seconds", labelnames=("t",))
        increments = 10_000
        threads = 4

        def worker(tid: int) -> None:
            counter_child = counter.labels(t=str(tid % 2))
            histogram_child = histogram.labels(t=str(tid % 2))
            for _ in range(increments):
                counter_child.inc()
                histogram_child.observe(1e-4)

        pool = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = sum(
            series["value"]
            for series in registry.snapshot()["c_total"]["series"]
        )
        assert total == threads * increments
        observed = sum(
            series["count"]
            for series in registry.snapshot()["h_seconds"]["series"]
        )
        assert observed == threads * increments


class TestMergeSnapshot:
    def _worker_snapshot(self, ticks: int, latency_count: int) -> dict:
        worker = MetricsRegistry()
        worker.counter("ticks_total", labelnames=("s",)).labels(
            s="a"
        ).inc(ticks)
        histogram = worker.histogram("h_seconds", buckets=(0.1, 1.0))
        for _ in range(latency_count):
            histogram.observe(0.05)
        return worker.snapshot()

    def test_mirror_is_idempotent(self):
        registry = MetricsRegistry()
        snapshot = self._worker_snapshot(ticks=5, latency_count=3)
        merge_snapshot(registry, snapshot, {"shard": "0"})
        merge_snapshot(registry, snapshot, {"shard": "0"})  # re-merge
        merged = registry.snapshot()
        assert merged["ticks_total"]["series"] == [
            {"labels": {"shard": "0", "s": "a"}, "value": 5.0}
        ]
        assert merged["h_seconds"]["series"][0]["count"] == 3

    def test_generation_keying_accumulates_across_restarts(self):
        # Per-series semantics are replace, so a restarted source
        # (counters reset to zero) must land in a fresh series: the
        # sharded supervisor keys by generation.  Sums over ``gen``
        # then keep accumulating for counters AND histograms alike,
        # instead of counters aliasing into the pre-restart value and
        # histograms winding backwards.
        registry = MetricsRegistry()
        merge_snapshot(
            registry,
            self._worker_snapshot(ticks=100, latency_count=4),
            {"shard": "0", "gen": "0"},
        )
        # The worker crashed and restarted; its counters start over.
        merge_snapshot(
            registry,
            self._worker_snapshot(ticks=30, latency_count=1),
            {"shard": "0", "gen": "1"},
        )
        merged = registry.snapshot()
        ticks = {
            s["labels"]["gen"]: s["value"]
            for s in merged["ticks_total"]["series"]
        }
        assert ticks == {"0": 100.0, "1": 30.0}
        assert sum(ticks.values()) == 130.0
        latencies = sum(
            s["count"] for s in merged["h_seconds"]["series"]
        )
        assert latencies == 5
