"""Observability wiring: monitor, supervised runner, checkpoints, tracing.

The load-bearing test here is byte-identical output: enabling metrics
(or leaving the default no-op recorder in place) must not change a
single emitted event — observability is a read-only layer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.exceptions import ValidationError
from repro.obs.recorder import NULL_RECORDER
from repro.obs.tracing import disable_tracing, enable_tracing
from repro.runtime import CheckpointManager, RetryPolicy, SupervisedRunner
from repro.streams.faults import FlakySource
from repro.streams.source import ArraySource


def _stream(rng, n=120):
    pattern = rng.normal(size=6)
    return pattern, np.concatenate(
        [rng.normal(size=40) + 9, pattern, rng.normal(size=40) + 9,
         pattern + 0.01, rng.normal(size=20) + 9]
    )


def _build(pattern, metrics: bool) -> StreamMonitor:
    monitor = StreamMonitor()
    if metrics:
        monitor.enable_metrics()
    monitor.add_stream("s0")
    # Two fusable queries (a bank) + one unbanked kind, so both the
    # bank path and the per-query path are exercised.
    monitor.add_query("q0", pattern, epsilon=0.5)
    monitor.add_query("q1", pattern + 0.25, epsilon=0.5)
    monitor.add_query("q2", pattern, epsilon=0.5,
                      matcher="constrained", max_stretch=2.0)
    return monitor


def _event_bytes(events) -> bytes:
    return json.dumps(
        [
            (e.stream, e.query, e.match.start, e.match.end,
             e.match.distance, e.match.output_time)
            for e in events
        ]
    ).encode()


class TestNoOpParity:
    def test_default_recorder_is_the_shared_noop(self):
        monitor = StreamMonitor()
        assert monitor.recorder is NULL_RECORDER
        assert monitor.recorder.enabled is False
        assert monitor.metrics() is None

    def test_push_output_byte_identical_with_metrics_on(self, rng):
        pattern, values = _stream(rng)
        plain = _build(pattern, metrics=False)
        metered = _build(pattern, metrics=True)
        plain_events, metered_events = [], []
        for value in values:
            plain_events.extend(plain.push("s0", float(value)))
            metered_events.extend(metered.push("s0", float(value)))
        plain_events.extend(plain.flush())
        metered_events.extend(metered.flush())
        assert plain_events  # the workload must actually emit something
        assert _event_bytes(plain_events) == _event_bytes(metered_events)
        assert _event_bytes(plain.history) == _event_bytes(metered.history)

    def test_push_many_output_byte_identical_with_metrics_on(self, rng):
        pattern, values = _stream(rng)
        plain = _build(pattern, metrics=False)
        metered = _build(pattern, metrics=True)
        plain_events = plain.push_many("s0", values) + plain.flush()
        metered_events = metered.push_many("s0", values) + metered.flush()
        assert plain_events
        assert _event_bytes(plain_events) == _event_bytes(metered_events)

    def test_output_byte_identical_under_tracing(self, rng):
        pattern, values = _stream(rng)
        plain = _build(pattern, metrics=False)
        traced = _build(pattern, metrics=False)
        plain_events = plain.push_many("s0", values) + plain.flush()
        tracer = enable_tracing()
        try:
            traced_events = traced.push_many("s0", values) + traced.flush()
        finally:
            disable_tracing()
        assert _event_bytes(plain_events) == _event_bytes(traced_events)
        assert len(tracer) > 0


class TestMonitorMetrics:
    def test_tick_match_and_latency_series(self, rng):
        pattern, values = _stream(rng)
        monitor = _build(pattern, metrics=True)
        events = []
        for value in values:
            events.extend(monitor.push("s0", float(value)))
        events.extend(monitor.flush())
        snapshot = monitor.metrics()

        ticks = snapshot["spring_stream_ticks_total"]["series"]
        assert ticks == [
            {"labels": {"stream": "s0"}, "value": float(len(values))}
        ]
        latency = snapshot["spring_push_latency_seconds"]["series"][0]
        assert latency["count"] == len(values)
        matches = {
            series["labels"]["query"]: series["value"]
            for series in snapshot["spring_matches_total"]["series"]
        }
        expected = {}
        for event in events:
            expected[event.query] = expected.get(event.query, 0) + 1
        assert matches == {q: float(n) for q, n in expected.items()}

    def test_per_matcher_collector_series(self, rng):
        pattern, values = _stream(rng)
        monitor = _build(pattern, metrics=True)
        monitor.push_many("s0", values)
        snapshot = monitor.metrics()
        per_matcher = {
            series["labels"]["query"]: series["value"]
            for series in snapshot["spring_matcher_ticks_total"]["series"]
        }
        assert per_matcher == {
            "q0": float(len(values)),
            "q1": float(len(values)),
            "q2": float(len(values)),
        }
        assert "spring_matcher_pending" in snapshot

    def test_bank_and_unbanked_latency_series(self, rng):
        pattern, values = _stream(rng, n=40)
        monitor = _build(pattern, metrics=True)
        for value in values[:10]:
            monitor.push("s0", float(value))
        snapshot = monitor.metrics()
        bank = snapshot["spring_bank_query_steps_total"]["series"][0]
        assert bank["value"] == 2 * 10  # the q0/q1 bank, 10 ticks
        unbanked = snapshot["spring_matcher_step_latency_seconds"]["series"]
        assert [series["labels"]["query"] for series in unbanked] == ["q2"]
        assert unbanked[0]["count"] == 10

    def test_enable_metrics_idempotent_and_registry_guard(self, rng):
        from repro.obs.metrics import MetricsRegistry

        monitor = StreamMonitor()
        registry = monitor.enable_metrics()
        assert monitor.enable_metrics() is registry
        with pytest.raises(ValidationError, match="different registry"):
            monitor.enable_metrics(MetricsRegistry())

    def test_metrics_snapshot_is_json_safe(self, rng):
        pattern, values = _stream(rng)
        monitor = _build(pattern, metrics=True)
        monitor.push_many("s0", values)
        json.dumps(monitor.metrics())


class TestRunnerMetrics:
    def test_retries_and_run_report_metrics(self, rng, tmp_path):
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.add_query("q", pattern, epsilon=0.5)
        source = FlakySource(
            ArraySource(values, name="s0"),
            rate=0.2, seed=1, max_consecutive=1,
        )
        checkpoint = CheckpointManager(tmp_path / "ckpt")
        runner = SupervisedRunner(
            monitor, [source],
            policy=RetryPolicy(max_attempts=5, base_delay=0.0),
            checkpoint=checkpoint, checkpoint_every=50,
            sleep=lambda _s: None,
        )
        registry = runner.enable_metrics()
        report = runner.run()

        assert report.metrics is not None
        retries = report.metrics["spring_pull_retries_total"]["series"]
        assert report.health["s0"].retries > 0
        assert retries == [
            {
                "labels": {"stream": "s0"},
                "value": float(report.health["s0"].retries),
            }
        ]

        writes = report.metrics["spring_checkpoint_write_seconds"]["series"]
        assert writes[0]["count"] == report.checkpoints
        written = report.metrics["spring_checkpoint_bytes_total"]["series"]
        assert written[0]["value"] > 0
        assert registry is runner.monitor.recorder.registry

    def test_dead_letters_counted(self, rng):
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.add_query("q", pattern, epsilon=0.5)
        runner = SupervisedRunner(
            monitor, [ArraySource(values, name="s0")], sleep=lambda _s: None
        )
        runner.enable_metrics()

        def explode(event):
            raise RuntimeError("subscriber bug")

        runner.subscribe(explode)
        report = runner.run()
        assert report.dead_letters
        dead = report.metrics["spring_dead_letters_total"]["series"]
        assert dead == [
            {"labels": {"stream": "s0"}, "value": float(len(report.dead_letters))}
        ]

    def test_quarantine_counted(self, rng):
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.add_query("q", pattern, epsilon=0.5)

        class FatalSource(ArraySource):
            def __iter__(self):
                yield float(values[0])
                raise ValueError("fatal parse error")

        runner = SupervisedRunner(
            monitor, [FatalSource(values, name="s0")], sleep=lambda _s: None
        )
        runner.enable_metrics()
        report = runner.run()
        assert report.health["s0"].quarantined
        quarantines = report.metrics["spring_quarantines_total"]["series"]
        assert quarantines == [{"labels": {"stream": "s0"}, "value": 1.0}]

    def test_metrics_none_when_not_enabled(self, rng):
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.add_query("q", pattern, epsilon=0.5)
        runner = SupervisedRunner(
            monitor, [ArraySource(values, name="s0")], sleep=lambda _s: None
        )
        report = runner.run()
        assert report.metrics is None

    def test_restore_timing_recorded_on_resume(self, rng, tmp_path):
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.add_query("q", pattern, epsilon=0.5)
        checkpoint = CheckpointManager(tmp_path / "ckpt")
        runner = SupervisedRunner(
            monitor, [ArraySource(values, name="s0")],
            checkpoint=checkpoint, checkpoint_every=25,
            sleep=lambda _s: None,
        )
        runner.run(max_ticks=60)

        from repro.obs.recorder import MetricsRecorder

        recorder = MetricsRecorder()
        checkpoint_b = CheckpointManager(tmp_path / "ckpt")
        checkpoint_b.recorder = recorder
        checkpoint_b.resume()
        restores = recorder.registry.snapshot()[
            "spring_checkpoint_restore_seconds"
        ]["series"]
        assert restores[0]["count"] == 1


class TestCheckpointStateHygiene:
    def test_recorder_never_reaches_snapshot_payload(self, rng, tmp_path):
        """Enabling metrics must not leak into serialized monitor state."""
        pattern, values = _stream(rng)
        monitor = StreamMonitor(keep_history=False)
        monitor.enable_metrics()
        monitor.add_query("q", pattern, epsilon=0.5)
        monitor.add_stream("s0")
        monitor.push_many("s0", values[:30])
        checkpoint = CheckpointManager(tmp_path)
        checkpoint.recorder = monitor.recorder
        path = checkpoint.save(monitor, watermark=30)
        blob = path.read_text()
        assert "recorder" not in blob
        restored, _meta = CheckpointManager(tmp_path).resume()
        assert restored.recorder.enabled is False
