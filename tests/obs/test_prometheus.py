"""Prometheus text exposition: format shape, round-trip, atomic write."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse, render, write


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    ticks = registry.counter(
        "spring_stream_ticks_total", "Stream values pushed", ("stream",)
    )
    ticks.labels(stream="s0").inc(42)
    ticks.labels(stream="s1").inc(7)
    registry.gauge("spring_matcher_pending", "holding", ("stream", "query"))\
        .labels(stream="s0", query="q0").set(1.0)
    latency = registry.histogram(
        "spring_push_latency_seconds", "push latency", ("stream",),
        buckets=(1e-4, 1e-3, 1e-2),
    )
    for value in (5e-5, 5e-4, 5e-4, 0.5):
        latency.labels(stream="s0").observe(value)
    return registry


class TestRender:
    def test_help_and_type_lines(self):
        text = render(_populated_registry())
        assert "# HELP spring_stream_ticks_total Stream values pushed" in text
        assert "# TYPE spring_stream_ticks_total counter" in text
        assert "# TYPE spring_push_latency_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        text = render(_populated_registry())
        lines = [
            line for line in text.splitlines()
            if line.startswith("spring_push_latency_seconds_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in lines[-1]
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("spring_push_latency_seconds_count")
        )
        assert counts[-1] == float(count_line.rsplit(" ", 1)[1]) == 4

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "x", ("name",)).labels(
            name='we"ird\\path\nnewline'
        ).inc()
        text = render(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        samples = parse(text)["c_total"]
        assert samples[0][1]["name"] == 'we"ird\\path\nnewline'

    def test_empty_registry_renders_empty(self):
        assert render(MetricsRegistry()) == ""


class TestRoundTrip:
    def test_every_sample_survives(self):
        registry = _populated_registry()
        families = parse(render(registry))
        ticks = {
            labels["stream"]: value
            for _, labels, value in families["spring_stream_ticks_total"]
        }
        assert ticks == {"s0": 42.0, "s1": 7.0}
        histogram = families["spring_push_latency_seconds"]
        sums = [
            value for name, _, value in histogram if name.endswith("_sum")
        ]
        assert sums == [pytest.approx(5e-5 + 5e-4 + 5e-4 + 0.5)]
        infinity_buckets = [
            value
            for name, labels, value in histogram
            if name.endswith("_bucket") and labels.get("le") == "+Inf"
        ]
        assert infinity_buckets == [4.0]

    def test_inf_values_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.inf)
        samples = parse(render(registry))["g"]
        assert samples[0][2] == math.inf

    def test_malformed_line_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="malformed"):
            parse("this is { not a metric")


class TestWrite:
    def test_atomic_write_and_reread(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.prom"
        returned = write(registry, path)
        assert returned == path
        assert not path.with_suffix(".prom.tmp").exists()
        families = parse(path.read_text())
        assert "spring_stream_ticks_total" in families

    def test_overwrite_updates_in_place(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        path = tmp_path / "m.prom"
        write(registry, path)
        counter.inc(5)
        write(registry, path)
        assert parse(path.read_text())["c_total"][0][2] == 5.0

    def test_creates_parent_directory(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "nested" / "dir" / "m.prom"
        write(registry, path)
        assert path.exists()
