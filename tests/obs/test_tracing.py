"""Tracer semantics: nesting, self time, bounded buffer, global gate."""

from __future__ import annotations

import time

from repro.obs import tracing
from repro.obs.tracing import Tracer, disable_tracing, enable_tracing


class TestTracer:
    def test_spans_record_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.events()
        assert [event["name"] for event in events] == ["outer", "inner"]
        assert events[0]["parent"] == -1
        assert events[1]["parent"] == 0

    def test_totals_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        totals = tracer.totals()
        assert totals["outer"]["total"] >= totals["inner"]["total"]
        assert totals["outer"]["self"] == (
            totals["outer"]["total"] - totals["inner"]["total"]
        )
        assert totals["inner"]["self"] == totals["inner"]["total"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        events = tracer.events()
        assert events[1]["parent"] == 0
        assert events[2]["parent"] == 0

    def test_limit_drops_and_counts(self):
        tracer = Tracer(limit=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3
        # Dropped spans must not corrupt the nesting stack.
        with tracer.span("late"):
            pass
        assert tracer.dropped == 4

    def test_clear_resets(self):
        tracer = Tracer(limit=1)
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0
        with tracer.span("t"):
            pass
        assert tracer.events()[0]["parent"] == -1


class TestGlobalGate:
    def test_disabled_by_default(self):
        assert tracing.ACTIVE is None
        assert tracing.current_tracer() is None

    def test_enable_disable_round_trip(self):
        tracer = enable_tracing(limit=10)
        assert tracing.ACTIVE is tracer
        assert tracing.current_tracer() is tracer
        with tracer.span("x"):
            pass
        returned = disable_tracing()
        assert returned is tracer
        assert tracing.ACTIVE is None
        assert len(returned) == 1

    def test_disable_when_inactive_returns_none(self):
        assert disable_tracing() is None
