"""Grouped-vs-flat admission parity: the strategy must be invisible.

Tiered admission (ISSUE 8) promises byte-identical observable behaviour
to the flat cascade: for *any* stream — NaN gaps, deep-wake spans,
boundary-grazing values — a grouped engine and a flat engine emit the
same matches, park the same rows at the same ticks, count the same
pruned ticks, and write the same checkpoints.  Hypothesis drives the
stream shape, bank composition, epsilon, buffer capacity, and group
size (including degenerate sizes 1 and larger-than-bank); the
kill-at-any-tick sweep additionally proves parked-group state rides
checkpoints across *strategy changes* — a snapshot written under
grouped admission resumes under flat (and vice versa) to the same
byte stream, because the index is a pure function of the parked set.

These tests are the executable form of the exactness argument in
``docs/algorithm.md`` §14; the flat cascade's own on/off parity lives
in ``test_prune_parity``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusedSpring, QueryBank, StreamMonitor
from repro.core.backends import available_backends
from repro.core.checkpoint import dump_monitor_json, load_monitor_json

query_values = st.floats(min_value=98.0, max_value=102.0, allow_nan=False)
cold_values = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
warm_values = st.floats(min_value=97.0, max_value=103.0, allow_nan=False)

BACKENDS = available_backends()


def queries_strategy(min_queries=2, max_queries=6):
    return st.lists(
        st.lists(query_values, min_size=2, max_size=5),
        min_size=min_queries,
        max_size=max_queries,
    )


@st.composite
def parky_streams(draw, min_size=10, max_size=60):
    """Streams engineered to exercise park / wake / deep-wake."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = [draw(cold_values) for _ in range(n)]
    start = draw(st.integers(min_value=0, max_value=max(0, n // 2 - 1)))
    length = draw(st.integers(min_value=2, max_value=6))
    for i in range(start, min(n, start + length)):
        values[i] = draw(warm_values)
    if draw(st.booleans()) and n - 2 > start + length:
        blip = draw(st.integers(min_value=start + length, max_value=n - 1))
        values[blip] = draw(warm_values)
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        values[draw(st.integers(min_value=0, max_value=n - 1))] = float("nan")
    return values


def _events(engine, stream):
    events = []
    for value in stream:
        events.extend(engine.step(value))
    events.extend(engine.flush())
    return [
        (qi, m.start, m.end, m.distance, m.output_time) for qi, m in events
    ]


def _pair(queries, epsilon, capacity, group_size, backend="numpy", kind=None):
    kwargs = {} if kind is None else {"local_distance": kind}
    flat = FusedSpring(
        QueryBank(queries, epsilons=epsilon, **kwargs),
        prune_buffer=capacity,
        backend=backend,
        admission="flat",
    )
    grouped = FusedSpring(
        QueryBank(queries, epsilons=epsilon, **kwargs),
        prune_buffer=capacity,
        backend=backend,
        admission="grouped",
        admission_group_size=group_size,
    )
    return flat, grouped


class TestEngineParity:
    @settings(max_examples=60, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
        group_size=st.integers(min_value=1, max_value=8),
        kind=st.sampled_from(["squared", "absolute"]),
    )
    def test_match_stream_identical(
        self, queries, stream, epsilon, capacity, group_size, kind
    ):
        flat, grouped = _pair(queries, epsilon, capacity, group_size,
                              kind=kind)
        assert _events(grouped, stream) == _events(flat, stream)

    @settings(max_examples=40, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
        group_size=st.integers(min_value=1, max_value=8),
    )
    def test_parked_sets_and_counters_track_exactly(
        self, queries, stream, epsilon, capacity, group_size
    ):
        """Tick-by-tick: same parked rows, same pruned-tick count.

        Stronger than end-of-stream parity — a transiently divergent
        park that healed before the next match would pass the event
        check but fail here.
        """
        flat, grouped = _pair(queries, epsilon, capacity, group_size)
        for value in stream:
            flat.step(value)
            grouped.step(value)
            np.testing.assert_array_equal(grouped.parked, flat.parked)
            assert grouped.pruned_ticks == flat.pruned_ticks
        grouped.catch_up_all()
        flat.catch_up_all()
        np.testing.assert_array_equal(grouped._ticks, flat._ticks)
        np.testing.assert_array_equal(grouped._best_d, flat._best_d)

    @settings(max_examples=30, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        group_size=st.integers(min_value=1, max_value=8),
    )
    def test_certified_groups_imply_savings_accounting(
        self, queries, stream, epsilon, group_size
    ):
        """Counter sanity: certified + descended == groups examined, and
        group counters stay zero on the flat side."""
        flat, grouped = _pair(queries, epsilon, 16, group_size)
        _events(flat, stream)
        _events(grouped, stream)
        assert flat.groups_certified == 0
        assert flat.group_descents == 0
        assert grouped.groups_certified >= 0
        assert grouped.group_descents >= 0


class TestBackendSweep:
    @settings(max_examples=15, deadline=None)
    @given(
        queries=queries_strategy(max_queries=4),
        stream=parky_streams(max_size=40),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        group_size=st.integers(min_value=1, max_value=5),
    )
    def test_grouped_parity_on_every_backend(
        self, queries, stream, epsilon, group_size
    ):
        """One flat numpy reference; grouped on every available backend."""
        reference = FusedSpring(
            QueryBank(queries, epsilons=epsilon),
            prune_buffer=8,
            backend="numpy",
            admission="flat",
        )
        expected = _events(reference, stream)
        for backend in BACKENDS:
            grouped = FusedSpring(
                QueryBank(queries, epsilons=epsilon),
                prune_buffer=8,
                backend=backend,
                admission="grouped",
                admission_group_size=group_size,
            )
            assert _events(grouped, stream) == expected, backend


def _monitor(admission, specs, group_size=None, prune_buffer=16):
    monitor = StreamMonitor(
        prune=True,
        prune_buffer=prune_buffer,
        admission=admission,
        admission_group_size=group_size,
    )
    monitor.add_stream("s")
    for name, query, eps in specs:
        monitor.add_query(name, query, epsilon=eps)
    return monitor


def _push_all(monitor, values):
    return [
        (e.query, e.match.start, e.match.end, e.match.distance,
         e.match.output_time)
        for v in values
        for e in monitor.push("s", v)
    ]


class TestCheckpointKillAtAnyTick:
    @settings(max_examples=25, deadline=None)
    @given(
        queries=queries_strategy(max_queries=4),
        stream=parky_streams(min_size=16, max_size=48),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        group_size=st.integers(min_value=1, max_value=5),
        cut_frac=st.floats(min_value=0.1, max_value=0.9),
        resume_grouped=st.booleans(),
    )
    def test_parked_group_state_rides_checkpoints(
        self, queries, stream, epsilon, group_size, cut_frac, resume_grouped
    ):
        """Snapshot at an arbitrary tick, restore under either strategy,
        and the suffix event stream is byte-identical to the unbroken
        grouped run — parked groups re-form from the restored parked
        set, never from serialised index state."""
        specs = [(f"q{i}", q, epsilon) for i, q in enumerate(queries)]
        cut = max(1, int(len(stream) * cut_frac))

        unbroken = _monitor("grouped", specs, group_size)
        prefix_expected = _push_all(unbroken, stream[:cut])
        suffix_expected = _push_all(unbroken, stream[cut:])

        victim = _monitor("grouped", specs, group_size)
        assert _push_all(victim, stream[:cut]) == prefix_expected
        blob = dump_monitor_json(victim)

        if resume_grouped:
            resumed = load_monitor_json(
                blob, admission="grouped", admission_group_size=group_size
            )
        else:
            resumed = load_monitor_json(blob, admission="flat")
        assert _push_all(resumed, stream[cut:]) == suffix_expected

    def test_parking_actually_engages_in_groups(self):
        """Guard against vacuous parity: groups really certify."""
        queries = [[100.0 + 0.1 * i, 100.5 + 0.1 * i] for i in range(6)]
        stream = [100.2, 100.4, 100.3] + [0.0] * 40
        engine = FusedSpring(
            QueryBank(queries, epsilons=4.0),
            prune_buffer=8,
            admission="grouped",
            admission_group_size=3,
        )
        for value in stream:
            engine.step(value)
        assert engine.parked.all()
        assert engine.pruned_ticks > 0
        assert engine.groups_certified > 0
        assert engine.admission_kind == "grouped"
