"""Cross-backend parity: compiled kernels must be observationally invisible.

The exactness contract of the kernel backend layer (ISSUE 6) is the
same shape as the pruning cascade's: for *any* stream — NaN gaps,
parked spans, error-policy aborts, checkpoint/restore cycles — an
engine on a compiled backend and an engine on the NumPy reference emit
byte-identical match streams (positions, distances, output times,
order) and hold byte-identical column state.  NaN *payload* bits are
canonicalised before comparison (the one degree of freedom the
contract leaves open; see ``repro.core.backends.base``) — placement
must still agree exactly.

Every test parametrises over the compiled backends that are actually
available (``cext`` wherever a C compiler exists, ``numba`` where the
optional package is installed) and skips itself when only numpy is
present, so the suite is meaningful on every CI leg without being
environment-specific.

These tests are the executable form of the bit-exactness argument in
``docs/algorithm.md`` §12.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusedSpring, Spring, StreamMonitor
from repro.core.backends import available_backends
from repro.core.checkpoint import load_monitor, save_monitor
from repro.exceptions import StreamValueError

COMPILED = [name for name in available_backends() if name != "numpy"]

pytestmark = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel backend available here"
)

finite_values = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
stream_values = st.one_of(finite_values, st.just(float("nan")))


def canon(values: np.ndarray) -> bytes:
    out = np.array(values, dtype=np.float64, copy=True)
    out[np.isnan(out)] = np.nan
    return out.tobytes()


def _springs(queries, epsilon):
    return [Spring(np.asarray(q, dtype=float), epsilon=epsilon) for q in queries]


def _match_tuples(pairs):
    return [
        (qi, m.start, m.end, m.distance, m.output_time) for qi, m in pairs
    ]


def _assert_engine_states_equal(a: FusedSpring, b: FusedSpring):
    assert canon(b._d) == canon(a._d)
    assert b._s.tobytes() == a._s.tobytes()
    assert np.array_equal(b._ticks, a._ticks)
    assert canon(b._dmin) == canon(a._dmin)
    assert np.array_equal(b._ts, a._ts)
    assert np.array_equal(b._te, a._te)
    assert canon(b._best_d) == canon(a._best_d)
    assert np.array_equal(b._best_s, a._best_s)
    assert np.array_equal(b._best_e, a._best_e)


# ----------------------------------------------------------------------
# Fused engine parity (dense path)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", COMPILED)
@settings(max_examples=25, deadline=None)
@given(
    queries=st.lists(
        st.lists(finite_values, min_size=2, max_size=5),
        min_size=1,
        max_size=4,
    ),
    stream=st.lists(stream_values, min_size=1, max_size=40),
    epsilon=st.floats(min_value=0.5, max_value=30.0),
    use_extend=st.booleans(),
)
def test_fused_engine_parity(name, queries, stream, epsilon, use_extend):
    reference = FusedSpring.from_springs(
        _springs(queries, epsilon), backend="numpy"
    )
    compiled = FusedSpring.from_springs(
        _springs(queries, epsilon), backend=name
    )
    assert compiled.compiled_step

    if use_extend:
        want = _match_tuples(reference.extend(stream))
        got = _match_tuples(compiled.extend(stream))
        assert got == want
    else:
        for value in stream:
            want = _match_tuples(reference.step(value))
            got = _match_tuples(compiled.step(value))
            assert got == want
            _assert_engine_states_equal(reference, compiled)
    assert _match_tuples(compiled.flush()) == _match_tuples(reference.flush())
    _assert_engine_states_equal(reference, compiled)


# ----------------------------------------------------------------------
# Pruned / parked engine parity
# ----------------------------------------------------------------------


@st.composite
def parky_streams(draw, min_size=10, max_size=50):
    """Warm excursion (arms best-so-far), cold spans (parks), blips
    (wakes), NaN gaps — the full park/wake/deep-wake repertoire."""
    cold = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
    warm = st.floats(min_value=97.0, max_value=103.0, allow_nan=False)
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = [draw(cold) for _ in range(n)]
    start = draw(st.integers(min_value=0, max_value=max(0, n // 2 - 1)))
    for i in range(start, min(n, start + draw(st.integers(2, 6)))):
        values[i] = draw(warm)
    if draw(st.booleans()):
        values[draw(st.integers(min_value=0, max_value=n - 1))] = draw(warm)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        values[draw(st.integers(min_value=0, max_value=n - 1))] = float("nan")
    return values


@pytest.mark.parametrize("name", COMPILED)
@settings(max_examples=25, deadline=None)
@given(
    queries=st.lists(
        st.lists(
            st.floats(min_value=98.0, max_value=102.0, allow_nan=False),
            min_size=2,
            max_size=5,
        ),
        min_size=2,
        max_size=4,
    ),
    stream=parky_streams(),
    buffer_size=st.integers(min_value=2, max_value=32),
)
def test_pruned_engine_parity(name, queries, stream, buffer_size):
    reference = FusedSpring.from_springs(
        _springs(queries, 16.0), prune_buffer=buffer_size, backend="numpy"
    )
    compiled = FusedSpring.from_springs(
        _springs(queries, 16.0), prune_buffer=buffer_size, backend=name
    )
    want, got = [], []
    for value in stream:
        want.extend(_match_tuples(reference.step(value)))
        got.extend(_match_tuples(compiled.step(value)))
    want.extend(_match_tuples(reference.flush()))
    got.extend(_match_tuples(compiled.flush()))
    assert got == want
    # flush() wakes every parked row, so full state must now agree.
    _assert_engine_states_equal(reference, compiled)


# ----------------------------------------------------------------------
# Error-policy parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", COMPILED)
@pytest.mark.parametrize("use_extend", [False, True])
def test_missing_error_policy_parity(name, use_extend):
    """missing="error" aborts at the same tick with the same partial
    matches under every backend."""
    queries = [np.zeros(2), np.zeros(3)]
    stream = [0.0] * 10 + [float("nan")] + [0.0] * 5

    def run(backend):
        springs = [Spring(q, epsilon=5.0, missing="error") for q in queries]
        engine = FusedSpring.from_springs(springs, backend=backend)
        matches = []
        try:
            if use_extend:
                matches.extend(engine.extend(stream))
            else:
                for value in stream:
                    matches.extend(engine.step(value))
        except StreamValueError as exc:
            return str(exc), _match_tuples(matches) + _match_tuples(
                exc.partial_matches
            )
        pytest.fail("missing='error' did not raise on NaN")

    assert run(name) == run("numpy")


# ----------------------------------------------------------------------
# Monitor parity across matcher kinds
# ----------------------------------------------------------------------

KINDS = [
    ("spring", {}),
    ("constrained", {"max_stretch": 2.0}),
    ("normalized", {"warmup": 8}),
    ("cascade", {"reduction": 2}),
]


def _mixed_stream(rng, n=160):
    """Warm/cold phases plus NaN gaps, shared by the monitor tests."""
    values = rng.normal(scale=1.5, size=n)
    values[20:40] += 100.0  # warm excursion near the cold queries
    values[rng.random(size=n) < 0.05] = np.nan
    return [float(v) for v in values]


def _build_monitor(rng_seed, backend, prune):
    rng = np.random.default_rng(rng_seed)
    monitor = StreamMonitor(backend=backend, prune=prune, prune_buffer=16)
    monitor.add_stream("s0")
    for i in range(6):
        query = 100.0 + np.cumsum(rng.normal(scale=0.2, size=4 + i))
        monitor.add_query(f"q{i}", query, epsilon=8.0)
    for kind, kwargs in KINDS[1:]:
        query = np.cumsum(rng.normal(size=10))
        monitor.add_query(
            f"q_{kind}", query, epsilon=4.0, matcher=kind, **kwargs
        )
    return monitor


def _event_tuples(events):
    return [
        (e.stream, e.query, e.match.start, e.match.end, e.match.distance,
         e.match.output_time)
        for e in events
    ]


@pytest.mark.parametrize("name", COMPILED)
@pytest.mark.parametrize("prune", [False, True])
def test_monitor_parity_across_matcher_kinds(name, prune, rng):
    reference = _build_monitor(7, "numpy", prune)
    compiled = _build_monitor(7, name, prune)
    assert compiled.backend_name == name
    stream = _mixed_stream(rng)
    want, got = [], []
    for value in stream:
        want.extend(_event_tuples(reference.push("s0", value)))
        got.extend(_event_tuples(compiled.push("s0", value)))
    assert got == want


@pytest.mark.parametrize("name", COMPILED)
def test_monitor_push_many_parity(name, rng):
    reference = _build_monitor(11, "numpy", prune=True)
    compiled = _build_monitor(11, name, prune=True)
    stream = _mixed_stream(rng)
    want = _event_tuples(reference.push_many("s0", stream))
    got = _event_tuples(compiled.push_many("s0", stream))
    assert got == want


# ----------------------------------------------------------------------
# Checkpoints travel across backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("save_on,load_on", [("numpy", None), (None, "numpy")])
def test_checkpoint_round_trips_across_backends(save_on, load_on, rng):
    """A snapshot written under backend A restores under backend B to a
    byte-identical future match stream — the backend is a runtime
    property, never part of the state."""
    name = COMPILED[0]
    save_on = save_on or name
    load_on = load_on or name
    monitor = _build_monitor(13, save_on, prune=True)
    stream = _mixed_stream(rng, n=200)
    cut = 90
    for value in stream[:cut]:
        monitor.push("s0", value)

    payload = save_monitor(monitor)
    import json

    assert "backend" not in json.dumps(payload)
    restored = load_monitor(payload, backend=load_on)
    assert restored.backend_name == load_on

    want, got = [], []
    for value in stream[cut:]:
        want.extend(_event_tuples(monitor.push("s0", value)))
        got.extend(_event_tuples(restored.push("s0", value)))
    assert got == want
