"""Property tests for the cascade matcher and the top-k leaderboard."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Spring
from repro.core.cascade import CascadeSpring
from repro.core.topk import TopKSpring
from repro.dtw import dtw_distance

dyadic = st.integers(min_value=-10240, max_value=10240).map(
    lambda k: k / 1024.0
)


def sequences(min_size, max_size):
    return st.lists(dyadic, min_size=min_size, max_size=max_size)


@settings(max_examples=20, deadline=None)
@given(
    x=sequences(8, 60),
    y=sequences(4, 8),
    epsilon=st.floats(min_value=0.5, max_value=40.0),
    reduction=st.integers(min_value=1, max_value=3),
)
def test_cascade_reports_are_true_sub_epsilon_matches(
    x, y, epsilon, reduction
):
    """Cascade may *miss* (documented trade), but everything it reports
    is a genuine verified match: distance <= epsilon and equal to the
    true DTW of the reported interval."""
    cascade = CascadeSpring(y, epsilon=epsilon, reduction=reduction)
    matches = cascade.extend(x)
    final = cascade.flush()
    if final:
        matches.append(final)
    x_arr = np.asarray(x, dtype=float)
    for match in matches:
        assert match.distance <= epsilon + 1e-9
        true = dtw_distance(x_arr[match.start - 1 : match.end], y)
        assert true <= match.distance + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    x=sequences(8, 60),
    y=sequences(3, 6),
    k=st.integers(min_value=1, max_value=5),
)
def test_topk_is_k_smallest_of_all_reports(x, y, k):
    """The leaderboard equals the k smallest locally-optimal distances
    an epsilon = inf disjoint run produces."""
    reference = Spring(y, epsilon=np.inf)
    all_matches = reference.extend(x)
    final = reference.flush()
    if final:
        all_matches.append(final)

    top = TopKSpring(y, k=k)
    top.extend(x)
    top.flush()
    board = top.best()

    expected = sorted(m.distance for m in all_matches)[:k]
    got = [m.distance for m in board]
    assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)
    assert got == sorted(got)
