"""Property test: kill the monitor at any tick, recover, match exactly.

The resilience contract (ISSUE 2 / checkpoint module docstring) is
exactness: for *any* kill tick and *any* snapshot cadence, the events
acknowledged at the newest snapshot's watermark plus the events emitted
after resume must equal — stream, query, start, end, distance, output
time, and order — the events of an uninterrupted run.  Hypothesis
drives the kill tick, cadence, stream contents, and fault injection;
two same-policy scalar queries keep the fused-bank execution path (PR 1)
engaged so recovery is checked against batched execution, not just the
per-matcher loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StreamMonitor
from repro.runtime import CheckpointManager, RetryPolicy, SupervisedRunner
from repro.streams import ArraySource, FlakySource

QUERY_A = np.array([0.0, 2.0, -1.0, 1.0])
QUERY_B = np.array([1.0, -2.0, 0.5, 0.0, 1.5])


def _monitor() -> StreamMonitor:
    monitor = StreamMonitor()
    # Two plain scalar queries -> grouped into one FusedSpring bank.
    monitor.add_query("a", QUERY_A, epsilon=2.5)
    monitor.add_query("b", QUERY_B, epsilon=2.5)
    return monitor


def _variant_monitor() -> StreamMonitor:
    """One query per scalar matcher kind, all on the same stream.

    Extends the exactness contract beyond plain springs: the layered
    variants (admission band, top-k leaderboard, z-normalising
    transform, blocked cascade) must also recover match-for-match.
    The two top-k queries share a fused bank, so banked execution with
    transform policies is recovered too.
    """
    monitor = StreamMonitor()
    monitor.add_query("band", QUERY_A, epsilon=2.5,
                      matcher="constrained", max_stretch=2.0)
    monitor.add_query("top", QUERY_A, epsilon=6.0, matcher="topk", k=2)
    monitor.add_query("top2", QUERY_B, epsilon=6.0, matcher="topk", k=2)
    monitor.add_query("norm", QUERY_B, epsilon=2.5,
                      matcher="normalized", warmup=3)
    monitor.add_query("casc", QUERY_A, epsilon=2.5,
                      matcher="cascade", reduction=2)
    monitor.add_query("dyn", QUERY_A, epsilon=1.0,
                      matcher="dynnorm", min_length=3, max_length=8)
    return monitor


def _key(event):
    return (
        event.stream,
        event.query,
        event.match.start,
        event.match.end,
        event.match.distance,
        event.match.output_time,
    )


def _source(values, flaky_seed):
    source = ArraySource(np.asarray(values, dtype=np.float64), name="s")
    if flaky_seed is None:
        return source
    return FlakySource(source, rate=0.2, seed=flaky_seed)


_policy = lambda: RetryPolicy(base_delay=0.0)  # noqa: E731
_no_sleep = lambda _t: None  # noqa: E731


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        min_size=12,
        max_size=60,
    ),
    data=st.data(),
    cadence=st.integers(min_value=1, max_value=9),
    flaky_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
)
def test_kill_at_any_tick_recovers_exactly(tmp_path_factory, values, data, cadence, flaky_seed):
    kill_at = data.draw(
        st.integers(min_value=1, max_value=len(values)), label="kill_at"
    )
    tmp = tmp_path_factory.mktemp("ckpt")

    reference = SupervisedRunner(
        _monitor(), [_source(values, flaky_seed)],
        policy=_policy(), sleep=_no_sleep,
    )
    expected = [_key(e) for e in reference.run().events]

    manager = CheckpointManager(tmp)
    first = SupervisedRunner(
        _monitor(),
        [_source(values, flaky_seed)],
        policy=_policy(),
        checkpoint=manager,
        checkpoint_every=cadence,
        sleep=_no_sleep,
    )
    first.run(max_ticks=kill_at, flush=False)  # the "kill"

    snapshot = manager.latest()
    if snapshot is None:
        # Killed before the first snapshot: recovery is a fresh start.
        prefix = []
        second = SupervisedRunner(
            _monitor(), [_source(values, flaky_seed)],
            policy=_policy(), sleep=_no_sleep,
        )
    else:
        acked = int(snapshot["events_emitted"])
        prefix = [_key(e) for e in first.events[:acked]]
        second = SupervisedRunner.resume(
            [_source(values, flaky_seed)], manager,
            policy=_policy(), sleep=_no_sleep,
        )
    tail = [_key(e) for e in second.run().events]
    assert prefix + tail == expected


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        min_size=12,
        max_size=60,
    ),
    data=st.data(),
    cadence=st.integers(min_value=1, max_value=9),
)
def test_kill_at_any_tick_recovers_all_matcher_kinds(
    tmp_path_factory, values, data, cadence
):
    kill_at = data.draw(
        st.integers(min_value=1, max_value=len(values)), label="kill_at"
    )
    tmp = tmp_path_factory.mktemp("ckpt_variants")

    reference = SupervisedRunner(
        _variant_monitor(), [_source(values, None)],
        policy=_policy(), sleep=_no_sleep,
    )
    expected = [_key(e) for e in reference.run().events]

    manager = CheckpointManager(tmp)
    first = SupervisedRunner(
        _variant_monitor(),
        [_source(values, None)],
        policy=_policy(),
        checkpoint=manager,
        checkpoint_every=cadence,
        sleep=_no_sleep,
    )
    first.run(max_ticks=kill_at, flush=False)  # the "kill"

    snapshot = manager.latest()
    if snapshot is None:
        prefix = []
        second = SupervisedRunner(
            _variant_monitor(), [_source(values, None)],
            policy=_policy(), sleep=_no_sleep,
        )
    else:
        acked = int(snapshot["events_emitted"])
        prefix = [_key(e) for e in first.events[:acked]]
        second = SupervisedRunner.resume(
            [_source(values, None)], manager,
            policy=_policy(), sleep=_no_sleep,
        )
    tail = [_key(e) for e in second.run().events]
    assert prefix + tail == expected


QUERY_FAR = np.array([100.0, 101.0, 99.5, 100.5])
QUERY_FAR2 = np.array([100.5, 99.0, 100.0])


def _parked_monitor(prune: bool, prune_buffer: int) -> StreamMonitor:
    """Two fused queries far from the stream's cold regime."""
    monitor = StreamMonitor(prune=prune, prune_buffer=prune_buffer)
    monitor.add_query("far", QUERY_FAR, epsilon=2.5)
    monitor.add_query("far2", QUERY_FAR2, epsilon=2.5)
    return monitor


@settings(max_examples=20, deadline=None)
@given(
    cold=st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        min_size=12,
        max_size=50,
    ),
    data=st.data(),
    cadence=st.integers(min_value=1, max_value=7),
    prune_buffer=st.integers(min_value=2, max_value=12),
    resume_prune=st.booleans(),
)
def test_kill_at_any_tick_recovers_parked_queries(
    tmp_path_factory, cold, data, cadence, prune_buffer, resume_prune
):
    """Snapshots taken mid-park resume to the exact event suffix.

    The stream opens with a matching excursion (arming each query's
    best-so-far, the cascade's park precondition) and then goes cold,
    so the admission cascade certifiably parks both queries; killing
    anywhere in the cold span exercises checkpoints whose matcher
    states are frozen at the park tick plus the replay-buffer payload.
    The tiny buffer also drives the deep-wake (span outgrew buffer)
    restore path, and resuming with pruning disabled must still emit
    the identical suffix.
    """
    values = list(QUERY_FAR) + cold
    kill_at = data.draw(
        st.integers(min_value=1, max_value=len(values)), label="kill_at"
    )
    tmp = tmp_path_factory.mktemp("ckpt_parked")

    reference = SupervisedRunner(
        _parked_monitor(True, prune_buffer), [_source(values, None)],
        policy=_policy(), sleep=_no_sleep,
    )
    expected = [_key(e) for e in reference.run().events]

    manager = CheckpointManager(tmp)
    first = SupervisedRunner(
        _parked_monitor(True, prune_buffer),
        [_source(values, None)],
        policy=_policy(),
        checkpoint=manager,
        checkpoint_every=cadence,
        sleep=_no_sleep,
    )
    first.run(max_ticks=kill_at, flush=False)  # the "kill"

    snapshot = manager.latest()
    if snapshot is None:
        prefix = []
        second = SupervisedRunner(
            _parked_monitor(resume_prune, prune_buffer),
            [_source(values, None)],
            policy=_policy(), sleep=_no_sleep,
        )
    else:
        acked = int(snapshot["events_emitted"])
        prefix = [_key(e) for e in first.events[:acked]]
        second = SupervisedRunner.resume(
            [_source(values, None)], manager,
            policy=_policy(), sleep=_no_sleep,
            prune=resume_prune, prune_buffer=prune_buffer,
        )
    tail = [_key(e) for e in second.run().events]
    assert prefix + tail == expected


@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        min_size=15,
        max_size=40,
    ),
    data=st.data(),
)
def test_double_crash_recovers_exactly(tmp_path_factory, values, data):
    """Crash, resume, crash again, resume again — still exact."""
    first_kill = data.draw(
        st.integers(min_value=3, max_value=len(values) - 1), label="first_kill"
    )
    tmp = tmp_path_factory.mktemp("ckpt2")

    reference = SupervisedRunner(
        _monitor(), [_source(values, None)], sleep=_no_sleep
    )
    expected = [_key(e) for e in reference.run().events]

    manager = CheckpointManager(tmp)
    runner = SupervisedRunner(
        _monitor(),
        [_source(values, None)],
        checkpoint=manager,
        checkpoint_every=2,
        sleep=_no_sleep,
    )
    runner.run(max_ticks=first_kill, flush=False)
    snapshot = manager.latest()
    if snapshot is None:
        return  # nothing persisted yet; covered by the single-crash test
    acked = int(snapshot["events_emitted"])
    prefix = [_key(e) for e in runner.events[:acked]]

    # Second life: run a couple more ticks, then die again.
    second = SupervisedRunner.resume(
        [_source(values, None)], manager, checkpoint_every=2, sleep=_no_sleep
    )
    second.run(max_ticks=2, flush=False)
    snapshot2 = manager.latest()
    acked2 = int(snapshot2["events_emitted"])
    assert acked2 >= acked
    prefix2 = prefix + [_key(e) for e in second.events[: acked2 - acked]]

    third = SupervisedRunner.resume(
        [_source(values, None)], manager, sleep=_no_sleep
    )
    tail = [_key(e) for e in third.run().events]
    assert prefix2 + tail == expected
