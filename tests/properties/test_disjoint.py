"""Property-based tests of the disjoint-query algorithm (Lemma 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import NaiveSubsequenceMatcher
from repro.core import Spring
from repro.core.matches import overlaps

# Dyadic rationals (multiples of 2^-10) in [-20, 20]: every squared
# difference, sum, and cumulative sum is *exactly* representable in
# float64, so the vectorised scan and the literal recurrence make
# bit-identical decisions and SPRING == Naive is an exact property.
# (With arbitrary reals, costs below one ulp of the running sums — e.g.
# (1e-9)^2 next to 1.0 — can flip tie decisions and regroup matches;
# see the float64 caveat in repro/core/state.py.)
finite_floats = st.integers(min_value=-20480, max_value=20480).map(
    lambda k: k / 1024.0
)


def sequences(min_size, max_size):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


def run_both(x, y, epsilon):
    spring = Spring(y, epsilon=epsilon)
    naive = NaiveSubsequenceMatcher(y, epsilon=epsilon)
    sm = spring.extend(x)
    nm = naive.extend(x)
    fs, fn = spring.flush(), naive.flush()
    if fs:
        sm.append(fs)
    if fn:
        nm.append(fn)
    return sm, nm


@settings(max_examples=30, deadline=None)
@given(
    x=sequences(2, 40),
    y=sequences(1, 5),
    epsilon=st.floats(min_value=0.1, max_value=30.0),
)
def test_spring_and_naive_report_equal_distances_and_times(x, y, epsilon):
    """The O(m) algorithm and the O(n.m) oracle are indistinguishable.

    Positions can differ on exact distance ties (both answers are then
    optimal), so the comparison keys on (end, distance, output time) and
    verifies tied starts both realise the same distance.
    """
    sm, nm = run_both(x, y, epsilon)
    assert len(sm) == len(nm)
    for a, b in zip(sm, nm):
        assert a.distance == pytest.approx(b.distance, rel=1e-9, abs=1e-12)
        assert a.output_time == b.output_time
        assert a.end == b.end or a.distance == pytest.approx(
            b.distance, abs=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(
    x=sequences(2, 50),
    y=sequences(1, 5),
    epsilon=st.floats(min_value=0.1, max_value=30.0),
)
def test_reports_are_disjoint_and_qualify(x, y, epsilon):
    spring = Spring(y, epsilon=epsilon)
    matches = spring.extend(x)
    final = spring.flush()
    if final:
        matches.append(final)
    for match in matches:
        assert match.distance <= epsilon
        if match.output_time is not None:
            assert match.output_time >= match.end
    for a, b in zip(matches, matches[1:]):
        assert not overlaps((a.start, a.end), (b.start, b.end))


@settings(max_examples=25, deadline=None)
@given(x=sequences(2, 40), y=sequences(1, 4))
def test_epsilon_monotonicity(x, y):
    """Tighter thresholds never invent matches a looser run lacks room
    for: every tight match interval lies inside some loose group."""
    loose_eps, tight_eps = 20.0, 5.0
    spring_loose = Spring(y, epsilon=loose_eps)
    loose = spring_loose.extend(x)
    final = spring_loose.flush()
    if final:
        loose.append(final)
    spring_tight = Spring(y, epsilon=tight_eps)
    tight = spring_tight.extend(x)
    final = spring_tight.flush()
    if final:
        tight.append(final)
    # Each tight match qualifies under the loose threshold too, so the
    # loose run must have reported something at-least-as-good whose
    # group covers it (or an even better non-overlapping optimum).
    for match in tight:
        assert match.distance <= tight_eps
        better = [m for m in loose if m.distance <= match.distance + 1e-9]
        assert better, "loose run lost a qualifying optimum entirely"


@settings(max_examples=25, deadline=None)
@given(x=sequences(5, 40), y=sequences(1, 4))
def test_state_invariants_hold_every_tick(x, y):
    spring = Spring(y, epsilon=3.0)
    for tick, value in enumerate(x, start=1):
        spring.step(value)
        d = spring.current_distances
        s = spring.current_starts
        finite = np.isfinite(d)
        assert (d[finite] >= 0).all()
        assert (s[finite] >= 1).all()
        assert (s[finite] <= tick).all()
