"""Property-based tests of the DTW substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtw import (
    accumulate_subsequence,
    backtrack_path,
    dtw_distance,
    is_valid_path,
    lb_keogh,
    lb_kim,
    lb_yi,
    pairwise_cost_matrix,
    path_cost,
)

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def sequences(min_size, max_size):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


@settings(max_examples=50, deadline=None)
@given(x=sequences(1, 15), y=sequences(1, 15))
def test_dtw_nonnegative_and_symmetric(x, y):
    d = dtw_distance(x, y)
    assert d >= 0
    assert d == pytest.approx(dtw_distance(y, x), rel=1e-9, abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(x=sequences(1, 15))
def test_dtw_identity(x):
    assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(x=sequences(1, 12), k=st.integers(min_value=1, max_value=4))
def test_dtw_invariant_to_repetition(x, k):
    """Repeating every element k times is free under DTW."""
    stretched = np.repeat(np.asarray(x, dtype=float), k)
    assert dtw_distance(stretched, x) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(x=sequences(2, 12), y=sequences(2, 12))
def test_dtw_bounded_by_euclidean_when_equal_length(x, y):
    """With equal lengths, the diagonal path is one admissible warping,
    so DTW <= sum of pointwise costs."""
    if len(x) != len(y):
        y = (y * (len(x) // len(y) + 1))[: len(x)]
    euclidean = float(np.sum((np.asarray(x) - np.asarray(y)) ** 2))
    assert dtw_distance(x, y) <= euclidean + 1e-9


@settings(max_examples=50, deadline=None)
@given(x=sequences(1, 12), y=sequences(1, 12))
def test_lower_bounds_never_exceed_dtw(x, y):
    d = dtw_distance(x, y)
    assert lb_kim(x, y) <= d + 1e-9
    assert lb_yi(x, y) <= d + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    x=sequences(2, 12),
    radius=st.integers(min_value=0, max_value=12),
)
def test_lb_keogh_bounds_banded_dtw(x, radius):
    from repro.dtw import dtw_windowed

    y = list(reversed(x))  # same length, generally different shape
    banded = dtw_windowed(x, y, constraint="sakoe_chiba", radius=radius)
    assert lb_keogh(x, y, radius) <= banded + 1e-9


@settings(max_examples=40, deadline=None)
@given(x=sequences(1, 12), y=sequences(1, 6))
def test_backtracked_subsequence_path_realises_cell_value(x, y):
    cost = pairwise_cost_matrix(x, y)
    acc = accumulate_subsequence(cost)
    end = int(np.argmin(acc[:, -1]))
    path = backtrack_path(acc, (end, len(y) - 1))
    assert is_valid_path(path, len(x), len(y), subsequence=True)
    assert path_cost(path, cost) == pytest.approx(
        float(acc[end, -1]), rel=1e-9, abs=1e-12
    )
