"""Property tests: fused and blocked execution are invisible optimisations.

Every fast path added for throughput — :class:`repro.core.FusedSpring`
(query fusion), :meth:`Spring.extend` blocking, and the blocked
:func:`spring_search` — must emit byte-identical ``(start, end,
output_time)`` tuples and rel-tol-equal distances versus the reference
per-tick :class:`Spring` loop, on random walks, NaN-bearing streams, and
tied-cost streams, including ragged query lengths in a padded bank.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FusedSpring, QueryBank, Spring, spring_search

finite_floats = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)

# Integer-valued streams collapse many local costs onto the same value,
# so these strategies keep the Equation 5 tie-break order under constant
# pressure while remaining exact in float64.
tied_floats = st.integers(min_value=0, max_value=3).map(float)

maybe_nan_floats = st.one_of(
    finite_floats, st.just(float("nan")), st.just(float("nan"))
)


def sequences(elements, min_size, max_size):
    return st.lists(elements, min_size=min_size, max_size=max_size)


def query_banks(elements, max_queries=4, max_len=8):
    return st.lists(
        sequences(elements, 1, max_len), min_size=1, max_size=max_queries
    )


def reference_stream(queries, epsilons, stream):
    """The ground-truth event stream from per-tick per-query Springs."""
    springs = [Spring(q, epsilon=e) for q, e in zip(queries, epsilons)]
    events = []
    for value in stream:
        for qi, spring in enumerate(springs):
            match = spring.step(value)
            if match is not None:
                events.append((qi, match.start, match.end, match.output_time, match.distance))
    for qi, spring in enumerate(springs):
        match = spring.flush()
        if match is not None:
            events.append((qi, match.start, match.end, match.output_time, match.distance))
    return events


def assert_same_events(expected, got):
    assert len(expected) == len(got)
    for exp, act in zip(expected, got):
        # (query, start, end, output_time) byte-identical; distance rel-tol.
        assert exp[:4] == act[:4]
        assert act[4] == pytest.approx(exp[4], rel=1e-9, abs=1e-12)


def fused_stream(queries, epsilons, stream, use_extend):
    engine = FusedSpring(QueryBank(queries, epsilons=epsilons))
    if use_extend:
        pairs = engine.extend(stream)
    else:
        pairs = [p for value in stream for p in engine.step(value)]
    pairs.extend(engine.flush())
    return [
        (qi, m.start, m.end, m.output_time, m.distance) for qi, m in pairs
    ]


@settings(max_examples=40, deadline=None)
@given(
    queries=query_banks(finite_floats),
    stream=sequences(finite_floats, 1, 60),
    epsilon=st.floats(min_value=0.1, max_value=50.0),
    use_extend=st.booleans(),
)
def test_fused_matches_reference_on_random_values(
    queries, stream, epsilon, use_extend
):
    epsilons = [epsilon] * len(queries)
    expected = reference_stream(queries, epsilons, stream)
    got = fused_stream(queries, epsilons, stream, use_extend)
    assert_same_events(expected, got)


@settings(max_examples=40, deadline=None)
@given(
    queries=query_banks(finite_floats),
    stream=sequences(maybe_nan_floats, 1, 60),
    epsilon=st.floats(min_value=0.1, max_value=50.0),
    use_extend=st.booleans(),
)
def test_fused_matches_reference_with_nan_gaps(
    queries, stream, epsilon, use_extend
):
    epsilons = [epsilon] * len(queries)
    expected = reference_stream(queries, epsilons, stream)
    got = fused_stream(queries, epsilons, stream, use_extend)
    assert_same_events(expected, got)


@settings(max_examples=40, deadline=None)
@given(
    queries=query_banks(tied_floats, max_queries=3, max_len=6),
    stream=sequences(tied_floats, 1, 80),
    epsilon=st.floats(min_value=0.5, max_value=20.0),
    use_extend=st.booleans(),
)
def test_fused_matches_reference_on_tied_costs(
    queries, stream, epsilon, use_extend
):
    epsilons = [epsilon] * len(queries)
    expected = reference_stream(queries, epsilons, stream)
    got = fused_stream(queries, epsilons, stream, use_extend)
    assert_same_events(expected, got)


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.lists(
        st.integers(min_value=1, max_value=9), min_size=2, max_size=5, unique=True
    ),
    stream=sequences(finite_floats, 1, 60),
    epsilon=st.floats(min_value=0.1, max_value=50.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ragged_padded_bank_matches_reference(lengths, stream, epsilon, seed):
    """Unique lengths guarantee a genuinely ragged (padded) bank."""
    gen = np.random.default_rng(seed)
    queries = [gen.normal(size=m).tolist() for m in lengths]
    epsilons = [epsilon] * len(queries)
    bank = QueryBank(queries, epsilons=epsilons)
    assert bank.ragged
    expected = reference_stream(queries, epsilons, stream)
    got = fused_stream(queries, epsilons, stream, use_extend=True)
    assert_same_events(expected, got)


@settings(max_examples=40, deadline=None)
@given(
    stream=sequences(finite_floats, 1, 120),
    query=sequences(finite_floats, 1, 8),
    epsilon=st.floats(min_value=0.1, max_value=50.0),
    block_size=st.integers(min_value=1, max_value=64),
)
def test_blocked_search_matches_per_tick_loop(stream, query, epsilon, block_size):
    """spring_search at any block size reproduces the per-tick loop."""
    spring = Spring(query, epsilon=epsilon)
    expected = [m for m in (spring.step(v) for v in stream) if m is not None]
    final = spring.flush()
    if final is not None:
        expected.append(final)

    got = spring_search(stream, query, epsilon=epsilon, block_size=block_size)

    assert len(expected) == len(got)
    for exp, act in zip(expected, got):
        assert (exp.start, exp.end, exp.output_time) == (
            act.start,
            act.end,
            act.output_time,
        )
        assert act.distance == pytest.approx(exp.distance, rel=1e-9, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    stream=sequences(maybe_nan_floats, 1, 80),
    query=sequences(finite_floats, 1, 6),
    epsilon=st.floats(min_value=0.1, max_value=50.0),
    block_size=st.integers(min_value=1, max_value=32),
)
def test_blocked_extend_matches_step_with_nans(stream, query, epsilon, block_size):
    """Spring.extend handles NaN ticks exactly like per-value step."""
    a = Spring(query, epsilon=epsilon)
    expected = [m for m in (a.step(v) for v in stream) if m is not None]

    b = Spring(query, epsilon=epsilon)
    got = b.extend(stream, block_size=block_size)

    assert a._tick == b._tick
    np.testing.assert_array_equal(a._state.d, b._state.d)
    np.testing.assert_array_equal(a._state.s, b._state.s)
    assert [(m.start, m.end, m.output_time) for m in expected] == [
        (m.start, m.end, m.output_time) for m in got
    ]
