"""Property tests: each legacy wrapper class == its layered composition.

The wrapper classes (ConstrainedSpring, TopKSpring, VectorSpring's
report-range mode, NormalizedSpring) are documented as thin shims over
kernel + policy/transform composition.  Hypothesis checks the claim
match-for-match: for arbitrary streams, queries, and parameters, the
wrapper and the explicit composition emit identical match sequences,
tick for tick, including the end-of-stream flush.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constrained import ConstrainedSpring
from repro.core.normalization import NormalizedSpring
from repro.core.policy import GroupRange, LengthBand, TopK
from repro.core.spring import Spring
from repro.core.topk import TopKSpring
from repro.core.transform import TransformedMatcher, ZNormalize
from repro.core.vector import VectorSpring

finite = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)
streams = st.lists(finite, min_size=8, max_size=60)
queries = st.lists(finite, min_size=2, max_size=6)


def _run(matcher, values):
    """Per-tick match keys, with None for quiet ticks, plus the flush."""
    out = []
    for value in values:
        out.append(_key(matcher.step(value)))
    out.append(_key(matcher.flush()))
    return out


def _key(match):
    if match is None:
        return None
    return (
        match.start, match.end, match.distance, match.output_time,
        match.group_start, match.group_end,
    )


@settings(max_examples=60, deadline=None)
@given(
    values=streams,
    query=queries,
    epsilon=st.floats(min_value=0.1, max_value=20.0),
    max_stretch=st.floats(min_value=1.0, max_value=4.0),
)
def test_constrained_equals_spring_plus_length_band(
    values, query, epsilon, max_stretch
):
    wrapper = ConstrainedSpring(query, epsilon=epsilon, max_stretch=max_stretch)
    layered = Spring(
        query, epsilon=epsilon, policies=[LengthBand(max_stretch)]
    )
    assert _run(wrapper, values) == _run(layered, values)


@settings(max_examples=60, deadline=None)
@given(
    values=streams,
    query=queries,
    k=st.integers(min_value=1, max_value=5),
    epsilon=st.one_of(st.just(np.inf), st.floats(min_value=0.1, max_value=20.0)),
)
def test_topk_equals_spring_plus_topk_policy(values, query, k, epsilon):
    wrapper = TopKSpring(query, k=k, epsilon=epsilon)
    policy = TopK(k)
    layered = Spring(query, epsilon=epsilon, policies=[policy])
    assert _run(wrapper, values) == _run(layered, values)
    assert [_key(m) for m in wrapper.best()] == [
        _key(m) for m in policy.best()
    ]
    assert wrapper.worst_distance == policy.worst_distance


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.lists(finite, min_size=2, max_size=2), min_size=8, max_size=50
    ),
    query=st.lists(
        st.lists(finite, min_size=2, max_size=2), min_size=2, max_size=5
    ),
    epsilon=st.floats(min_value=0.1, max_value=30.0),
)
def test_vector_report_range_equals_group_range_policy(values, query, epsilon):
    wrapper = VectorSpring(query, epsilon=epsilon, report_range=True)
    layered = VectorSpring(query, epsilon=epsilon, policies=[GroupRange()])
    arrays = [np.asarray(v) for v in values]
    assert _run(wrapper, arrays) == _run(layered, arrays)


@settings(max_examples=40, deadline=None)
@given(
    values=streams,
    # non-constant *in float64*: distinct tiny values (e.g. [0, 2.5e-210])
    # can still have a std that underflows to exactly 0, which ZNormalize
    # rightly rejects as constant
    query=queries.filter(lambda q: float(np.asarray(q).std()) > 0.0),
    epsilon=st.floats(min_value=0.1, max_value=20.0),
    warmup=st.integers(min_value=2, max_value=8),
    mode=st.sampled_from(["global", "ewm"]),
)
def test_normalized_equals_transformed_spring(
    values, query, epsilon, warmup, mode
):
    wrapper = NormalizedSpring(
        query, epsilon=epsilon, mode=mode, warmup=warmup
    )
    transform = ZNormalize(mode=mode, warmup=warmup)
    raw = np.asarray(query, dtype=np.float64)
    layered = TransformedMatcher(
        Spring(transform.fit_query(raw), epsilon=epsilon), transform
    )
    assert _run(wrapper, values) == _run(layered, values)
