"""LB-tightness properties: every lower bound really lower-bounds.

The stored-set bounds (``lb_kim``, ``lb_yi``, ``lb_keogh``) must never
exceed the true DTW distance they claim to bound, and the streaming
admission bound (``lb_corridor``, the cheap tier of the pruning
cascade) must never exceed any cell of the STWM column the kernel
would compute — that inequality *is* the pruning exactness proof's
load-bearing premise, so it gets the adversarial treatment here.

Dyadic rationals make the arithmetic exact; the bounds are still
evaluated with the very float64 operations the kernel uses, so these
are bit-level guarantees, not exact-arithmetic idealisations.

Marked ``slow`` (brute-force oracles are quadratic); runs in the
dedicated oracle CI job via ``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusedSpring, QueryBank
from repro.dtw.distance import dtw_distance
from repro.dtw.envelope_index import build_group_index
from repro.dtw.lower_bounds import (
    lb_corridor,
    lb_keogh,
    lb_kim,
    lb_yi,
    streaming_corridor,
)
from repro.dtw.subsequence import brute_force_all

pytestmark = pytest.mark.slow

dyadic = st.integers(min_value=-8192, max_value=8192).map(
    lambda k: k / 1024.0
)

sequences = st.lists(dyadic, min_size=1, max_size=16)


class TestStoredSetBounds:
    @settings(max_examples=120, deadline=None)
    @given(x=sequences, y=sequences)
    def test_lb_kim_below_dtw(self, x, y):
        assert lb_kim(x, y) <= dtw_distance(x, y)

    @settings(max_examples=120, deadline=None)
    @given(x=sequences, y=sequences)
    def test_lb_yi_below_dtw(self, x, y):
        assert lb_yi(x, y) <= dtw_distance(x, y)

    @settings(max_examples=120, deadline=None)
    @given(
        xy=st.integers(min_value=1, max_value=14).flatmap(
            lambda n: st.tuples(
                st.lists(dyadic, min_size=n, max_size=n),
                st.lists(dyadic, min_size=n, max_size=n),
            )
        ),
        radius=st.integers(min_value=0, max_value=14),
    )
    def test_lb_keogh_below_banded_dtw(self, xy, radius):
        """LB_Keogh bounds band-constrained DTW, hence unconstrained too
        once the radius covers the whole matrix."""
        x, y = xy
        if radius >= len(y):
            assert lb_keogh(x, y, radius) <= dtw_distance(x, y)
        else:
            # the unconstrained distance is itself a lower bound of the
            # banded one, so this is the sound direction to check cheaply
            assert lb_keogh(x, y, radius) >= 0.0
            full_radius = len(y)
            assert lb_keogh(x, y, full_radius) <= dtw_distance(x, y)


class TestStreamingCorridorBound:
    @settings(max_examples=150, deadline=None)
    @given(
        x=st.lists(dyadic, min_size=1, max_size=14),
        y=st.lists(dyadic, min_size=1, max_size=5),
    )
    def test_corridor_below_every_subsequence_distance(self, x, y):
        """``lb_corridor(x_t)`` <= DTW(X[ts..t], Y) for every start ts.

        Each subsequence ending at tick ``t`` pays at least the local
        cost of aligning ``x_t`` somewhere in the query, which the
        corridor bound lower-bounds — so it lower-bounds every entry of
        the oracle's column at ``t``.
        """
        lo, hi = streaming_corridor(y)
        D = brute_force_all(x, y)
        for t, value in enumerate(x):
            bound = lb_corridor(float(value), lo, hi)
            column = D[: t + 1, t]  # all subsequences ending at t
            assert bound <= column.min() + 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        x=st.lists(dyadic, min_size=1, max_size=14),
        y=st.lists(dyadic, min_size=1, max_size=5),
        kind=st.sampled_from(["squared", "absolute"]),
    )
    def test_corridor_below_every_kernel_cell(self, x, y, kind):
        """Bit-level: the bound never exceeds any live STWM cell.

        Runs the actual fused kernel and compares the corridor bound
        against the *computed* column minimum each tick — the exact
        comparison the pruning cascade performs, on the exact floats
        the kernel produced.
        """
        lo, hi = streaming_corridor(y)
        engine = FusedSpring(
            QueryBank([y], epsilons=np.inf, local_distance=kind)
        )
        for value in x:
            engine.step(float(value))
            bound = lb_corridor(float(value), lo, hi, kind)
            live = engine._d[0, 1:][np.isfinite(engine._d[0, 1:])]
            if live.size:
                assert bound <= live.min()

    @settings(max_examples=60, deadline=None)
    @given(
        value=dyadic,
        y=st.lists(dyadic, min_size=1, max_size=6),
    )
    def test_corridor_is_tight_for_single_elements(self, value, y):
        """The bound equals the best single-element local cost: it is
        the tightest bound expressible from the corridor alone."""
        lo, hi = streaming_corridor(y)
        best = min((value - yi) ** 2 for yi in y)
        assert lb_corridor(float(value), lo, hi) <= best
        if all(v == y[0] for v in y):
            assert lb_corridor(float(value), lo, hi) == best


@st.composite
def corridor_banks(draw):
    """Per-query ``(lo, hi, eps)`` vectors for a bank of 1..20 queries."""
    q = draw(st.integers(min_value=1, max_value=20))
    lo = np.array([draw(dyadic) for _ in range(q)])
    width = np.array(
        [draw(st.integers(min_value=0, max_value=4096)) / 1024.0
         for _ in range(q)]
    )
    eps = np.array(
        [draw(st.integers(min_value=0, max_value=8192)) / 1024.0
         for _ in range(q)]
    )
    return lo, lo + width, eps


class TestGroupedCorridorBound:
    """The merged-envelope group bound (tiered admission tier 1).

    The group corridor is the per-group min of member ``lo`` and max of
    member ``hi``; the group ε is the member max.  The exactness of
    grouped admission rests on two bit-level inequalities checked here
    with the kernel's own float64 arithmetic — see ``docs/algorithm.md``
    §14.
    """

    @settings(max_examples=150, deadline=None)
    @given(
        bank=corridor_banks(),
        x=dyadic,
        group_size=st.integers(min_value=1, max_value=7),
        kind=st.sampled_from(["squared", "absolute"]),
    )
    def test_group_bound_below_tightest_member_bound(
        self, bank, x, group_size, kind
    ):
        """Computed group bound <= computed bound of *every* member.

        Not just mathematically: the clamp-subtract-square pipeline must
        preserve the ordering on the actual floats, since certification
        compares the group bound against member epsilons verbatim.
        """
        lo, hi, eps = bank
        index = build_group_index(lo, hi, eps, group_size)
        group_lb = lb_corridor(float(x), index.lo, index.hi, kind)
        member_lb = lb_corridor(float(x), lo, hi, kind)
        for g in range(index.n_groups):
            members = index.rows[index.gid == g]
            assert group_lb[g] <= member_lb[members].min()

    @settings(max_examples=150, deadline=None)
    @given(
        bank=corridor_banks(),
        x=dyadic,
        group_size=st.integers(min_value=1, max_value=7),
        kind=st.sampled_from(["squared", "absolute"]),
    )
    def test_certification_is_sound(self, bank, x, group_size, kind):
        """Group certified cold => every member's exact test agrees.

        This is the descent rule's safety property: a certified group is
        never descended into, so each member's own ``lb > eps`` verdict
        must already be implied — on computed floats, not ideal reals.
        """
        lo, hi, eps = bank
        index = build_group_index(lo, hi, eps, group_size)
        certified = (
            lb_corridor(float(x), index.lo, index.hi, kind) > index.eps
        )
        member_cold = lb_corridor(float(x), lo, hi, kind) > eps
        for g in np.flatnonzero(certified):
            members = index.rows[index.gid == g]
            assert member_cold[members].all()

    @settings(max_examples=80, deadline=None)
    @given(bank=corridor_banks(), group_size=st.integers(min_value=1, max_value=7))
    def test_group_envelope_covers_members(self, bank, group_size):
        lo, hi, eps = bank
        index = build_group_index(lo, hi, eps, group_size)
        assert index.lo.shape == (index.n_groups,)
        for g in range(index.n_groups):
            members = index.rows[index.gid == g]
            assert index.lo[g] == lo[members].min()
            assert index.hi[g] == hi[members].max()
            assert index.eps[g] == eps[members].max()
        # every row appears exactly once across the groups
        assert sorted(index.rows.tolist()) == list(range(len(lo)))
