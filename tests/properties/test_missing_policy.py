"""NaN/inf policy parity across every execution path (ISSUE 5).

One policy module (:mod:`repro.core.missing`) now decides how every
path treats non-finite values, and these properties pin the unified
contract:

* ``missing="raise"`` is an exact alias for ``missing="error"``,
* a NaN at the same tick as an infinity reports as NaN ("NaN outranks
  inf"): classification is on the raw value, not on which branch saw
  it first,
* infinities are fatal under *both* policies; NaN only under "error",
* scalar ``step`` loops, blocked ``extend``, the fused engine (pruned
  and unpruned), and the monitor's ``push``/``push_many`` all emit the
  same matches *and* the same error (type, message, failing tick),
* batch paths attach the prefix's confirmed matches to the raised
  :class:`~repro.exceptions.StreamValueError` (``partial_matches``), so
  a half-good batch never silently loses its good half.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusedSpring, QueryBank, Spring, StreamMonitor
from repro.core.missing import (
    MISSING_POLICIES,
    classify_rows,
    first_fatal,
    resolve_missing_policy,
)
from repro.exceptions import StreamValueError, ValidationError

finite_values = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


@st.composite
def dirty_streams(draw, min_size=4, max_size=40):
    """Streams with optional NaN and ±inf contamination."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = [draw(finite_values) for _ in range(n)]
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        values[draw(st.integers(min_value=0, max_value=n - 1))] = float("nan")
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        sign = 1.0 if draw(st.booleans()) else -1.0
        values[draw(st.integers(min_value=0, max_value=n - 1))] = sign * float(
            "inf"
        )
    return values


queries_strategy = st.lists(
    st.lists(finite_values, min_size=1, max_size=4),
    min_size=2,
    max_size=4,
)


def _spring_step_outcome(queries, epsilon, missing, stream):
    """(matches, error message, partials) from per-value Spring.step."""
    springs = [Spring(q, epsilon=epsilon, missing=missing) for q in queries]
    matches = []
    for value in stream:
        for qi, spring in enumerate(springs):
            try:
                match = spring.step(value)
            except StreamValueError as err:
                return matches, str(err), list(err.partial_matches)
            if match is not None:
                matches.append(
                    (qi, match.start, match.end, match.distance,
                     match.output_time)
                )
    return matches, None, None


def _spring_extend_outcome(queries, epsilon, missing, stream):
    """(matches, error message, partials) from blocked Spring.extend.

    Springs run sequentially (the batch API), so only the first spring
    reaches the bad value; the others see the clean prefix.  Match
    parity with the step loop therefore holds on the clean prefix.
    """
    springs = [Spring(q, epsilon=epsilon, missing=missing) for q in queries]
    matches = []
    for qi, spring in enumerate(springs):
        try:
            for match in spring.extend(stream):
                matches.append(
                    (qi, match.start, match.end, match.distance,
                     match.output_time)
                )
        except StreamValueError as err:
            partial = [
                (qi, m.start, m.end, m.distance, m.output_time)
                for m in err.partial_matches
            ]
            matches.extend(partial)
            return matches, str(err), partial
    return matches, None, None


def _fused_outcome(queries, epsilon, missing, stream, prune_buffer,
                   use_extend):
    engine = FusedSpring(
        QueryBank(queries, epsilons=epsilon),
        missing=missing,
        prune_buffer=prune_buffer,
    )
    matches = []
    if use_extend:
        try:
            pairs = engine.extend(stream)
        except StreamValueError as err:
            partial = [
                (qi, m.start, m.end, m.distance, m.output_time)
                for qi, m in err.partial_matches
            ]
            return partial, str(err), partial
        matches = [
            (qi, m.start, m.end, m.distance, m.output_time)
            for qi, m in pairs
        ]
        return matches, None, None
    for value in stream:
        try:
            pairs = engine.step(value)
        except StreamValueError as err:
            return matches, str(err), list(err.partial_matches)
        matches.extend(
            (qi, m.start, m.end, m.distance, m.output_time)
            for qi, m in pairs
        )
    return matches, None, None


class TestPolicyResolution:
    def test_raise_is_an_alias_for_error(self):
        assert resolve_missing_policy("raise") == "error"
        assert resolve_missing_policy("error") == "error"
        assert resolve_missing_policy("skip") == "skip"

    def test_unknown_policy_rejected_everywhere(self):
        with pytest.raises(ValidationError):
            resolve_missing_policy("drop")
        with pytest.raises(ValidationError):
            Spring([1.0], epsilon=1.0, missing="drop")
        with pytest.raises(ValidationError):
            FusedSpring(QueryBank([[1.0]]), missing="drop")

    @settings(max_examples=30, deadline=None)
    @given(stream=dirty_streams())
    def test_classification_nan_outranks_inf(self, stream):
        arr = np.asarray(stream, dtype=np.float64)
        nan_rows, inf_rows = classify_rows(arr)
        assert not (nan_rows & inf_rows).any()
        np.testing.assert_array_equal(nan_rows, np.isnan(arr))
        np.testing.assert_array_equal(
            inf_rows, np.isinf(arr) & ~np.isnan(arr)
        )
        # inf is fatal under both policies; NaN only under "error"
        for policy in MISSING_POLICIES:
            stop = first_fatal(nan_rows, inf_rows, policy)
            fatal = (
                nan_rows | inf_rows if policy == "error" else inf_rows
            )
            expected = (
                int(np.flatnonzero(fatal)[0]) if fatal.any() else len(stream)
            )
            assert stop == expected


class TestPathParity:
    @settings(max_examples=50, deadline=None)
    @given(
        queries=queries_strategy,
        stream=dirty_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        missing=st.sampled_from(["skip", "error", "raise"]),
        prune_buffer=st.one_of(
            st.none(), st.integers(min_value=1, max_value=8)
        ),
        use_extend=st.booleans(),
    )
    def test_fused_paths_match_scalar_step(
        self, queries, stream, epsilon, missing, prune_buffer, use_extend
    ):
        """Fused step/extend (pruned or not) == per-value scalar loop.

        The per-value loop is the semantic reference: matches on the
        clean prefix, then the uniform error at the first fatal value.
        ``partial_matches`` on the batch paths must equal the matches
        emitted after the last pre-batch confirmation — here the whole
        clean-prefix match list, since the batch spans the stream.
        """
        ref_matches, ref_err, _ = _spring_step_outcome(
            queries, epsilon, missing, stream
        )
        got_matches, got_err, got_partial = _fused_outcome(
            queries, epsilon, missing, stream, prune_buffer, use_extend
        )
        assert got_err == ref_err
        if use_extend and ref_err is not None:
            # the engine orders batch emissions by (tick, query); the
            # scalar loop interleaves per value — compare as sets with
            # both sorted by (tick, query)
            key = lambda t: (t[4], t[0])  # noqa: E731
            assert sorted(got_matches, key=key) == sorted(
                ref_matches, key=key
            )
            assert got_partial == got_matches
        else:
            key = lambda t: (t[4], t[0])  # noqa: E731
            assert sorted(got_matches, key=key) == sorted(
                ref_matches, key=key
            )

    @settings(max_examples=50, deadline=None)
    @given(
        query=st.lists(finite_values, min_size=1, max_size=4),
        stream=dirty_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        missing=st.sampled_from(["skip", "error", "raise"]),
    )
    def test_spring_extend_matches_step(
        self, query, stream, epsilon, missing
    ):
        ref_matches, ref_err, _ = _spring_step_outcome(
            [query], epsilon, missing, stream
        )
        got_matches, got_err, got_partial = _spring_extend_outcome(
            [query], epsilon, missing, stream
        )
        assert got_err == ref_err
        assert got_matches == ref_matches
        if got_err is not None:
            assert got_partial == got_matches

    @settings(max_examples=40, deadline=None)
    @given(
        queries=queries_strategy,
        stream=dirty_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        missing=st.sampled_from(["skip", "error", "raise"]),
        prune=st.booleans(),
    )
    def test_monitor_push_and_push_many_agree(
        self, queries, stream, epsilon, missing, prune
    ):
        """Same dispatched events and same error on both monitor paths."""

        def build():
            monitor = StreamMonitor(prune=prune, prune_buffer=8)
            monitor.add_stream("s")
            for i, query in enumerate(queries):
                monitor.add_query(
                    f"q{i}", query, epsilon=epsilon, missing=missing
                )
            return monitor

        def sig(events):
            return [
                (e.query, e.match.start, e.match.end, e.match.distance,
                 e.match.output_time)
                for e in events
            ]

        pushed, push_err = [], None
        monitor = build()
        for value in stream:
            try:
                pushed.extend(monitor.push("s", value))
            except StreamValueError as err:
                assert err.partial_matches == []
                push_err = str(err)
                break

        monitor = build()
        try:
            many = monitor.push_many("s", stream)
            many_err = None
        except StreamValueError as err:
            many = list(err.partial_matches)
            many_err = str(err)

        assert many_err == push_err
        assert sig(many) == sig(pushed)


class TestNanOutranksInf:
    """A tick that is NaN reports as NaN even when infinities abound."""

    def test_error_policy_reports_nan_for_nan_tick(self):
        for missing in ("error", "raise"):
            spring = Spring([1.0, 2.0], epsilon=1.0, missing=missing)
            with pytest.raises(StreamValueError, match="tick 1 is NaN"):
                spring.extend([float("nan"), float("inf"), 1.0])

    def test_inf_tick_reports_infinite_under_both_policies(self):
        for missing in ("skip", "error"):
            spring = Spring([1.0, 2.0], epsilon=1.0, missing=missing)
            with pytest.raises(StreamValueError, match="tick 2 is infinite"):
                spring.extend([1.0, float("inf"), float("nan")])

    def test_fused_agrees_on_mixed_batch(self):
        for prune_buffer in (None, 4):
            engine = FusedSpring(
                QueryBank([[1.0], [2.0]]),
                missing="skip",
                prune_buffer=prune_buffer,
            )
            with pytest.raises(StreamValueError, match="tick 3 is infinite"):
                engine.extend([1.0, float("nan"), float("-inf")])
