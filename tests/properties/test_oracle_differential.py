"""Differential oracle: every registered matcher kind vs brute force.

For random streams and queries, :func:`repro.dtw.subsequence.
brute_force_all` computes the DTW distance of *every* subsequence —
``D[ts, te] = DTW(X[ts..te], Y)`` (0-based, closed).  Each registered
matcher kind is then checked against the invariants this full
information implies:

* **achievability** — every reported distance is the cost of a valid
  warping path over its window, so it is never below the window's true
  DTW distance ``D[start-1, end-1]`` (bit-exact comparison on dyadic
  inputs).  Strict equality is *not* an invariant after the first
  report: Figure 4's reset clears cells overlapping the reported
  region, so a later match's best surviving path may be costlier than
  the unconstrained optimum of its window,
* **first-report exactness** — before any reset the kernel's cell
  minimum *is* the unconstrained optimum, so the first report's
  distance equals its oracle entry exactly,
* **qualification** — reported distances are within epsilon,
* **disjointness** — no two reports share a stream tick (Lemma 2), and
  reports are confirmed no earlier than they end (Eq 9),
* **global minimum** — the best subsequence overall cannot be
  superseded by anything smaller, so its distance is always reported
  exactly,
* **completeness** — for every end tick whose best subsequence
  qualifies, some optimal start at that end overlaps a report
  (SPRING's no-false-dismissal guarantee, checked after ``flush()``).

Kinds with intentionally different contracts get the subset that their
contract still promises: ``cascade``'s verification stage recomputes
matches over a bounded buffer, so it is held to soundness only;
``constrained`` gates admission on the length band but its kernel still
tracks the *unconstrained* per-cell optimum, so global-minimum and
completeness apply only when the optimum itself is in band;
``normalized`` rewrites the input, so it is differentially tested
against the transform-then-match composition instead of raw ``D``;
``topk`` must report exactly like ``spring`` and additionally keep the
k smallest reported distances on its leaderboard; ``dynnorm`` has its
own per-window-normalised oracle (:func:`repro.dtw.dynnorm.
brute_force_dynnorm`) and is held to *bit-exact* equality against an
independent replay of its greedy grouping — for arbitrary floats, not
just dyadics, because its rolling moments and shared DP perform
operation-for-operation the oracle's float64 arithmetic.

Inputs are dyadic rationals (multiples of 2^-10), making every cost,
sum, and comparison exactly representable in float64 — the oracle and
the streaming kernel make bit-identical decisions, so ``==`` and
``>=`` are the right comparisons for unnormalised kinds.

The whole module is ``slow`` (the oracle is O(n^2 m) per example); it
runs in a dedicated CI job via ``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_matcher, matcher_kinds
from repro.core.matches import overlaps
from repro.core.spring import Spring
from repro.core.transform import ZNormalize
from repro.dtw.dynnorm import brute_force_dynnorm, normalized_window_dtw
from repro.dtw.subsequence import brute_force_all
from repro.exceptions import NotFittedError

pytestmark = pytest.mark.slow

#: Every kind this module knows how to test.  The registry-coverage
#: test below fails when a new kind is registered without an oracle
#: battery, so the suite can never silently under-cover.
TESTED_KINDS = {
    "cascade",
    "constrained",
    "dynnorm",
    "normalized",
    "spring",
    "topk",
    "vector",
}

# Dyadic rationals (multiples of 2^-10) in [-8, 8]: squared
# differences, their sums, and all comparisons are exact in float64.
dyadic = st.integers(min_value=-8192, max_value=8192).map(
    lambda k: k / 1024.0
)


def streams(min_size=2, max_size=18):
    return st.lists(dyadic, min_size=min_size, max_size=max_size)


def queries(max_size=4):
    return st.lists(dyadic, min_size=1, max_size=max_size)


epsilons = st.floats(min_value=0.25, max_value=16.0)


def run_stream(matcher, values) -> list:
    matches = []
    for value in values:
        match = matcher.step(value)
        if match is not None:
            matches.append(match)
    final = matcher.flush()
    if final is not None:
        matches.append(final)
    return matches


def assert_sound(matches, D, epsilon, first_exact=True):
    """Achievability + qualification + disjointness + Eq 9 ordering."""
    for index, match in enumerate(matches):
        oracle = D[match.start - 1, match.end - 1]
        assert match.distance >= oracle, (
            f"{match} reports a distance below its window's true DTW "
            f"distance {oracle} — not the cost of any valid path"
        )
        if first_exact and index == 0:
            assert match.distance == oracle
        assert match.distance <= epsilon
        if match.output_time is not None:
            assert match.output_time >= match.end
    for i, a in enumerate(matches):
        for b in matches[i + 1:]:
            assert not a.overlaps(b), f"overlapping reports: {a} vs {b}"


def assert_global_min_reported(matches, D, epsilon):
    """The overall best subsequence's distance is always reported.

    Nothing can strictly supersede the global minimum while it is the
    armed candidate, and no reset can touch its path before it arms
    (an overlapping *earlier* report would have to beat it), so some
    report realises exactly ``min(D)`` whenever it qualifies.
    """
    best = D.min()
    if best > epsilon:
        return
    assert matches and min(m.distance for m in matches) == best


def assert_complete(matches, D, epsilon, admissible=None):
    """Every qualifying end tick is covered or out-reported.

    For each end ``te`` whose best subsequence qualifies, either some
    optimal start at that end overlaps a report (tie-safe: any optimum
    counts), or the end was *superseded*: dismissing a qualifying
    candidate is only legal in favour of an at-least-as-good report
    that is not entirely in the candidate's past (Figure 4 replaces the
    armed candidate only on strictly smaller distance, and chains of
    such replacements march forward through the stream).  A qualifying
    end with no overlapping report and no such witness is a false
    dismissal.

    With ``admissible`` (the constrained kind's length band) the check
    applies only when *every* unconstrained optimum at that end is
    admissible: the kernel tracks one per-cell optimum regardless of
    the band, so an out-of-band optimum legitimately shadows in-band
    runners-up.
    """
    n = D.shape[0]
    for te in range(n):
        column = D[: te + 1, te]
        best = column.min()
        if best > epsilon:
            continue
        argmins = [ts for ts in range(te + 1) if column[ts] == best]
        if admissible is not None and not all(
            admissible(ts, te) for ts in argmins
        ):
            continue
        covered = any(
            overlaps((ts + 1, te + 1), (match.start, match.end))
            for ts in argmins
            for match in matches
        )
        superseded = any(
            match.distance <= best and match.end >= min(argmins) + 1
            for match in matches
        )
        assert covered or superseded, (
            f"qualifying end {te + 1} (distance {best}) neither covered "
            f"by nor superseded by any report — a false dismissal"
        )


class TestRegistryCoverage:
    def test_every_registered_kind_has_an_oracle_battery(self):
        assert set(matcher_kinds()) == TESTED_KINDS, (
            "matcher registry changed; add (or retire) an oracle battery "
            "in test_oracle_differential.py"
        )


class TestSpringOracle:
    @settings(max_examples=25, deadline=None)
    @given(x=streams(), y=queries(), epsilon=epsilons)
    def test_full_battery(self, x, y, epsilon):
        D = brute_force_all(x, y)
        matches = run_stream(build_matcher("spring", y, epsilon=epsilon), x)
        assert_sound(matches, D, epsilon)
        assert_global_min_reported(matches, D, epsilon)
        assert_complete(matches, D, epsilon)


class TestVectorOracle:
    @settings(max_examples=20, deadline=None)
    @given(
        x=st.lists(
            st.tuples(dyadic, dyadic), min_size=2, max_size=14
        ),
        y=st.lists(
            st.tuples(dyadic, dyadic), min_size=1, max_size=3
        ),
        epsilon=epsilons,
    )
    def test_full_battery_k2(self, x, y, epsilon):
        xs = np.asarray(x, dtype=np.float64)
        ys = np.asarray(y, dtype=np.float64)
        D = brute_force_all(xs, ys)
        matcher = build_matcher("vector", ys, epsilon=epsilon)
        matches = run_stream(matcher, [row for row in xs])
        assert_sound(matches, D, epsilon)
        assert_global_min_reported(matches, D, epsilon)
        assert_complete(matches, D, epsilon)


class TestConstrainedOracle:
    @settings(max_examples=20, deadline=None)
    @given(
        x=streams(),
        y=queries(),
        epsilon=epsilons,
        max_stretch=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_band_battery(self, x, y, epsilon, max_stretch):
        m = len(y)

        def in_band(ts, te):  # 0-based closed interval
            length = te - ts + 1
            return m / max_stretch <= length <= m * max_stretch

        D = brute_force_all(x, y)
        matcher = build_matcher(
            "constrained", y, epsilon=epsilon, max_stretch=max_stretch
        )
        matches = run_stream(matcher, x)
        assert_sound(matches, D, epsilon, first_exact=False)
        for match in matches:
            assert in_band(match.start - 1, match.end - 1)
        assert_complete(matches, D, epsilon, admissible=in_band)


class TestTopKOracle:
    @settings(max_examples=20, deadline=None)
    @given(
        x=streams(),
        y=queries(),
        epsilon=epsilons,
        k=st.integers(min_value=1, max_value=4),
    )
    def test_reports_match_spring_and_leaderboard_keeps_k_best(
        self, x, y, epsilon, k
    ):
        D = brute_force_all(x, y)
        topk = build_matcher("topk", y, k=k, epsilon=epsilon)
        reported = run_stream(topk, x)
        reference = run_stream(build_matcher("spring", y, epsilon=epsilon), x)
        # The kernel is plain SPRING; the TopK policy only *suppresses*
        # reports that would not improve the leaderboard, so the emitted
        # stream is an order-preserving subsequence of SPRING's.
        keys = [(m.start, m.end, m.distance) for m in reported]
        reference_keys = [
            (m.start, m.end, m.distance) for m in reference
        ]
        iterator = iter(reference_keys)
        assert all(key in iterator for key in keys), (
            f"topk reports {keys} are not a subsequence of "
            f"spring reports {reference_keys}"
        )
        assert_sound(reported, D, epsilon, first_exact=False)
        # Every SPRING report was offered to the leaderboard, so it must
        # end up holding exactly the k smallest reference distances.
        expected = sorted(m.distance for m in reference)[:k]
        assert sorted(m.distance for m in topk.best()) == expected


class TestCascadeOracle:
    @settings(max_examples=20, deadline=None)
    @given(x=streams(), y=queries(), epsilon=epsilons)
    def test_soundness_at_reduction_one(self, x, y, epsilon):
        """Soundness only: the coarse pre-filter and bounded
        verification buffer change which optima are captured, so
        completeness is not part of the cascade's contract."""
        D = brute_force_all(x, y)
        matcher = build_matcher("cascade", y, epsilon=epsilon, reduction=1)
        matches = run_stream(matcher, x)
        assert_sound(matches, D, epsilon, first_exact=False)


class TestNormalizedOracle:
    @settings(max_examples=20, deadline=None)
    @given(
        x=streams(min_size=6, max_size=24),
        y=queries(),
        epsilon=epsilons,
        warmup=st.integers(min_value=2, max_value=5),
    )
    def test_equals_transform_then_match_composition(
        self, x, y, epsilon, warmup
    ):
        """The streaming kind == replica-normalise then plain SPRING.

        The oracle here is compositional: push the raw stream through an
        identically-configured ZNormalize replica, run plain SPRING on
        the transformed values, then shift positions by the warm-up.
        """
        ys = np.asarray(y, dtype=np.float64)
        if float(ys.std()) == 0.0:
            return  # constant queries are rejected by the transform
        matcher = build_matcher(
            "normalized", y, epsilon=epsilon, warmup=warmup
        )
        actual = run_stream(matcher, x)

        replica = ZNormalize(mode="global", warmup=warmup)
        transformed = []
        for value in x:
            forwarded = replica.forward(value)
            if forwarded is not None:
                transformed.append(forwarded)
        reference = run_stream(
            Spring(replica.fit_query(ys), epsilon=epsilon), transformed
        )
        shift = replica.warmup
        assert len(actual) == len(reference)
        for got, want in zip(actual, reference):
            assert got.start == want.start + shift
            assert got.end == want.end + shift
            assert got.distance == pytest.approx(
                want.distance, rel=1e-9, abs=1e-12
            )


def greedy_dynnorm_replay(windows, epsilon, n_ticks):
    """Independent replay of DynNormSpring's greedy disjoint grouping.

    ``windows`` is the oracle's enumeration (end ascending, length
    descending); the replay mirrors the matcher's scan order exactly:
    skip non-qualifying or already-covered windows, arm the first
    qualifier, replace an overlapping qualifier only on strictly
    smaller distance, and confirm the pending window when the first
    disjoint qualifier arrives (its end is the confirming tick).
    Returns ``(reports, best)`` where reports are ``(start, end,
    distance, output_time)`` tuples and ``best`` is the first strict
    minimum over all windows (or None).
    """
    reports = []
    pending = None  # (distance, start, end)
    last_end = 0
    best = None
    for start, end, distance in windows:
        if best is None or distance < best[0]:
            best = (distance, start, end)
        if distance > epsilon or start <= last_end:
            continue
        if pending is None:
            pending = (distance, start, end)
        elif start <= pending[2]:
            if distance < pending[0]:
                pending = (distance, start, end)
        else:
            reports.append((pending[1], pending[2], pending[0], end))
            last_end = pending[2]
            pending = (distance, start, end)
    if pending is not None:
        reports.append((pending[1], pending[2], pending[0], n_ticks))
    return reports, best


class TestDynNormOracle:
    """Bit-exact differential: the streaming matcher's report stream
    equals the greedy replay over the brute-force per-window oracle.

    Unlike the other batteries, equality here is ``==`` on distances
    *by contract* (shift-and-add moments + shared DP are operation-for-
    operation the oracle's arithmetic), so the streams may contain
    NaN gaps and the comparison stays exact.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.lists(
            st.one_of(dyadic, st.just(float("nan"))),
            min_size=4,
            max_size=24,
        ),
        y=st.lists(dyadic, min_size=2, max_size=5),
        epsilon=epsilons,
        min_length=st.integers(min_value=2, max_value=4),
        extra=st.integers(min_value=0, max_value=4),
    )
    def test_reports_equal_greedy_replay_of_oracle(
        self, x, y, epsilon, min_length, extra
    ):
        ys = np.asarray(y, dtype=np.float64)
        if float(ys.std()) == 0.0:
            return  # constant queries are rejected
        max_length = min_length + extra
        windows = brute_force_dynnorm(x, ys, min_length, max_length)
        expected, best = greedy_dynnorm_replay(windows, epsilon, len(x))

        for prune in (True, False):
            matcher = build_matcher(
                "dynnorm", ys, epsilon=epsilon,
                min_length=min_length, max_length=max_length, prune=prune,
            )
            actual = run_stream(matcher, x)
            got = [
                (m.start, m.end, m.distance, m.output_time) for m in actual
            ]
            assert got == expected, (
                f"prune={prune}: matcher reports diverge from the greedy "
                f"replay of the brute-force oracle"
            )
            if best is None:
                with pytest.raises(NotFittedError):
                    matcher.best_match
            else:
                got_best = matcher.best_match
                assert (
                    got_best.distance, got_best.start, got_best.end
                ) == best


class TestDynNormApproximationGap:
    """Satellite 4: history-statistics normalisation is an approximation.

    A level-shifted copy of the query late in a stream whose history
    sits at a different level is a distance-0 window under per-window
    normalisation, but the history statistics (global or EWM) lag the
    shift, so NormalizedSpring's view of the same window is far from
    the query.  The gap is structural, not a rounding artefact —
    exactly why the ``dynnorm`` kind exists and why the docs label
    ``normalized`` approximate.
    """

    @pytest.mark.parametrize(
        "mode,halflife", [("global", 500.0), ("ewm", 200.0)]
    )
    def test_shifted_copy_invisible_to_history_normalisation(
        self, mode, halflife
    ):
        query = np.array([0.0, 2.0, -1.0, 1.0])
        rng = np.random.default_rng(17)
        values = list(rng.normal(scale=0.3, size=40))
        values += [float(v) for v in 0.5 * query + 50.0]

        # Per-window oracle: the embedded copy is (41, 44), distance ~0.
        windows = brute_force_dynnorm(values, query, 4, 4)
        embedded = [w for w in windows if (w[0], w[1]) == (41, 44)]
        assert embedded and embedded[0][2] == pytest.approx(0.0, abs=1e-12)

        # The streaming dynnorm matcher reports it.
        dyn = build_matcher(
            "dynnorm", query, epsilon=0.25, min_length=4, max_length=4
        )
        dyn_spans = [(m.start, m.end) for m in run_stream(dyn, values)]
        assert (41, 44) in dyn_spans

        # NormalizedSpring's view of the same window: quantify the gap
        # through an identically-configured transform replica, then
        # confirm the matcher itself misses the copy.
        replica = ZNormalize(mode=mode, halflife=halflife, warmup=5)
        qn = replica.fit_query(query)
        transformed = []
        for value in values:
            forwarded = replica.forward(value)
            if forwarded is not None:
                transformed.append(forwarded)
        seen_window = np.asarray(transformed[-4:], dtype=np.float64)
        gap = normalized_window_dtw(seen_window, qn)
        assert gap > 10.0  # orders of magnitude above the 0.25 epsilon

        matcher = build_matcher(
            "normalized", query, epsilon=0.25,
            mode=mode, halflife=halflife, warmup=5,
        )
        spans = [(m.start, m.end) for m in run_stream(matcher, values)]
        assert not any(s <= 41 and e >= 44 for s, e in spans)


class TestPrunedEngineOracle:
    """The lower-bound pruning cascade against the brute-force oracle.

    The cascade's exactness claim (ISSUE 5) is stronger than parity
    with the unpruned engine: here the *pruned* fused engine is held
    directly to the oracle invariants a plain Spring satisfies, so a
    hypothetical compensating-errors bug (pruned == unpruned but both
    wrong) cannot slip through.  Tiny buffer capacities force the
    deep-wake path; the warm-prefix stream shape arms the best-so-far
    park precondition so the cascade genuinely engages.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        x=streams(),
        y=queries(),
        epsilon=epsilons,
        capacity=st.integers(min_value=1, max_value=8),
    )
    def test_full_battery(self, x, y, epsilon, capacity):
        from repro.core import FusedSpring, QueryBank

        D = brute_force_all(x, y)
        engine = FusedSpring(
            QueryBank([y], epsilons=epsilon), prune_buffer=capacity
        )
        matches = []
        for value in x:
            matches.extend(m for _, m in engine.step(float(value)))
        matches.extend(m for _, m in engine.flush())
        assert_sound(matches, D, epsilon)
        assert_global_min_reported(matches, D, epsilon)
        assert_complete(matches, D, epsilon)

    @settings(max_examples=20, deadline=None)
    @given(
        cold=streams(min_size=6, max_size=14),
        y=queries(),
        epsilon=epsilons,
        capacity=st.integers(min_value=1, max_value=4),
    )
    def test_full_battery_with_forced_parking(
        self, cold, y, epsilon, capacity
    ):
        """Warm prefix (the query itself), then arbitrary suffix.

        Feeding the query verbatim drives the best-so-far to (or near)
        zero, satisfying the ``best_d <= epsilon`` park precondition,
        so cold suffix values actually park the query — and the oracle
        invariants must still hold across park, wake, and deep wake.
        """
        from repro.core import FusedSpring, QueryBank

        x = list(y) + cold
        D = brute_force_all(x, y)
        engine = FusedSpring(
            QueryBank([y], epsilons=epsilon), prune_buffer=capacity
        )
        matches = []
        for value in x:
            matches.extend(m for _, m in engine.step(float(value)))
        matches.extend(m for _, m in engine.flush())
        assert_sound(matches, D, epsilon)
        assert_global_min_reported(matches, D, epsilon)
        assert_complete(matches, D, epsilon)
