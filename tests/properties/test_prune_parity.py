"""Pruning on/off parity: the admission cascade must be invisible.

The exactness contract of the lower-bound pruning cascade (ISSUE 5) is
byte-identical observable behaviour: for *any* stream — including NaN
gaps, cold spans longer than the replay buffer, and values landing
exactly on a query's corridor — a pruned engine and an unpruned engine
emit the same matches (positions, distances, output times, order), hold
the same best-so-far, and agree after catch-up on every column of
matcher state.  Hypothesis drives the stream shape, bank composition,
epsilon, and buffer capacity; tiny capacities force the deep-wake path
(parked span outgrew the buffer) which restores columns via the
all-``inf`` reset representation rather than replay.

These tests are the executable form of the exactness argument in
``docs/algorithm.md`` §11.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FusedSpring, QueryBank, Spring, StreamMonitor
from repro.core.engine import build_plan

# Queries live near 100; cold stream values near 0 push the corridor
# bound far past epsilon, so parking engages as soon as a matching
# excursion arms each query's best-so-far.
query_values = st.floats(min_value=98.0, max_value=102.0, allow_nan=False)
cold_values = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
warm_values = st.floats(min_value=97.0, max_value=103.0, allow_nan=False)


def queries_strategy(max_queries=4):
    return st.lists(
        st.lists(query_values, min_size=2, max_size=5),
        min_size=2,
        max_size=max_queries,
    )


@st.composite
def parky_streams(draw, min_size=10, max_size=60):
    """Streams engineered to exercise park / wake / deep-wake.

    An early warm excursion (arming best-so-far), cold spans (parking),
    occasional later warm blips (waking), and optional NaNs (gaps while
    parked and while hot).
    """
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = [draw(cold_values) for _ in range(n)]
    # warm excursion somewhere in the first half
    start = draw(st.integers(min_value=0, max_value=max(0, n // 2 - 1)))
    length = draw(st.integers(min_value=2, max_value=6))
    for i in range(start, min(n, start + length)):
        values[i] = draw(warm_values)
    # optional later blip to wake parked queries
    if draw(st.booleans()) and n - 2 > start + length:
        blip = draw(st.integers(min_value=start + length, max_value=n - 1))
        values[blip] = draw(warm_values)
    # optional NaN gaps
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        values[draw(st.integers(min_value=0, max_value=n - 1))] = float("nan")
    return values


def _engine_events(engine, stream, use_extend):
    if use_extend:
        events = list(engine.extend(stream))
    else:
        events = []
        for value in stream:
            events.extend(engine.step(value))
    events.extend(engine.flush())
    return [
        (qi, m.start, m.end, m.distance, m.output_time) for qi, m in events
    ]


class TestEngineParity:
    @settings(max_examples=60, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
        use_extend=st.booleans(),
    )
    def test_match_stream_identical(
        self, queries, stream, epsilon, capacity, use_extend
    ):
        plain = FusedSpring(QueryBank(queries, epsilons=epsilon))
        pruned = FusedSpring(
            QueryBank(queries, epsilons=epsilon), prune_buffer=capacity
        )
        expected = _engine_events(plain, stream, use_extend)
        got = _engine_events(pruned, stream, use_extend)
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_caught_up_state_identical(
        self, queries, stream, epsilon, capacity
    ):
        """After catch_up_all the pruned engine's columns match exactly.

        Exactness is per-cell *representation* equivalence: caught-up
        cells either equal the unpruned run's cells bit-for-bit or are
        ``inf`` in both (the reset representation deep wake restores).
        Best-so-far and tick counters must always agree exactly.
        """
        plain = FusedSpring(QueryBank(queries, epsilons=epsilon))
        pruned = FusedSpring(
            QueryBank(queries, epsilons=epsilon), prune_buffer=capacity
        )
        for value in stream:
            plain.step(value)
            pruned.step(value)
        pruned.catch_up_all()
        assert not pruned.parked.any()
        np.testing.assert_array_equal(pruned._ticks, plain._ticks)
        np.testing.assert_array_equal(pruned._best_d, plain._best_d)
        np.testing.assert_array_equal(pruned._best_s, plain._best_s)
        np.testing.assert_array_equal(pruned._best_e, plain._best_e)
        np.testing.assert_array_equal(pruned._dmin, plain._dmin)
        # Deep wake may legitimately replace >epsilon cells with inf
        # (both representations imply "cannot contribute"), but any
        # finite caught-up cell must match bit-for-bit, and a cell at
        # or under epsilon must never be collapsed.  Column 0 is
        # excluded from the start-column comparison: the kernel writes
        # ``s[:, 0]`` fresh on every update without reading it, so a
        # stale value there is dead state, not divergence.  Padded tail
        # columns of short queries in a ragged bank are excluded
        # entirely: those cells are unobservable garbage by contract
        # (the engine masks them as always-blocked for Equation 9), and
        # replay vs. straight-line execution accumulate different
        # garbage there.
        valid = np.ones_like(pruned._d, dtype=bool)
        if pruned._pad_mask is not None:
            valid[:, 1:] = ~pruned._pad_mask
        finite = np.isfinite(pruned._d) & valid
        np.testing.assert_array_equal(
            pruned._d[finite], plain._d[finite]
        )
        np.testing.assert_array_equal(
            pruned._s[:, 1:][finite[:, 1:]], plain._s[:, 1:][finite[:, 1:]]
        )
        eps = np.broadcast_to(
            pruned.bank.epsilons[:, None], plain._d.shape
        )
        assert np.all(
            finite | (plain._d > eps) | ~np.isfinite(plain._d) | ~valid
        )

    @settings(max_examples=30, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_pruned_engine_matches_scalar_springs(
        self, queries, stream, epsilon, capacity
    ):
        """Triangle check: pruned fused == per-query scalar Spring."""
        springs = [Spring(q, epsilon=epsilon) for q in queries]
        expected = []
        for value in stream:
            for qi, spring in enumerate(springs):
                match = spring.step(value)
                if match is not None:
                    expected.append(
                        (qi, match.start, match.end, match.distance,
                         match.output_time)
                    )
        for qi, spring in enumerate(springs):
            match = spring.flush()
            if match is not None:
                expected.append(
                    (qi, match.start, match.end, match.distance,
                     match.output_time)
                )
        pruned = FusedSpring(
            QueryBank(queries, epsilons=epsilon), prune_buffer=capacity
        )
        assert _engine_events(pruned, stream, False) == expected


def _monitor_events(prune, specs, stream, prune_buffer, use_push_many):
    monitor = StreamMonitor(prune=prune, prune_buffer=prune_buffer)
    monitor.add_stream("s")
    for name, query, eps in specs:
        monitor.add_query(name, query, epsilon=eps)
    events = []
    if use_push_many:
        events.extend(monitor.push_many("s", stream))
    else:
        for value in stream:
            events.extend(monitor.push("s", value))
    return [
        (e.query, e.match.start, e.match.end, e.match.distance,
         e.match.output_time)
        for e in events
    ]


class TestMonitorParity:
    @settings(max_examples=40, deadline=None)
    @given(
        queries=queries_strategy(),
        stream=parky_streams(),
        epsilon=st.floats(min_value=0.5, max_value=8.0),
        capacity=st.integers(min_value=1, max_value=16),
        use_push_many=st.booleans(),
    )
    def test_event_stream_identical(
        self, queries, stream, epsilon, capacity, use_push_many
    ):
        specs = [(f"q{i}", q, epsilon) for i, q in enumerate(queries)]
        expected = _monitor_events(False, specs, stream, capacity, use_push_many)
        got = _monitor_events(True, specs, stream, capacity, use_push_many)
        assert got == expected

    def test_parking_actually_engages(self):
        """Guard against vacuous parity: the scenario really parks."""
        queries = [[100.0, 101.0, 99.5], [100.5, 99.0, 100.0, 101.0]]
        stream = [100.0, 100.5, 99.8] + [0.0] * 40
        engine = FusedSpring(
            QueryBank(queries, epsilons=4.0), prune_buffer=8
        )
        for value in stream:
            engine.step(value)
        assert engine.parked.all()
        assert engine.pruned_ticks > 0
        # parked rows still report the full stream clock
        np.testing.assert_array_equal(
            engine.stream_ticks, np.full(2, len(stream))
        )
        engine.catch_up_all()
        assert not engine.parked.any()


class TestPlanParity:
    @settings(max_examples=20, deadline=None)
    @given(
        stream=parky_streams(),
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_build_plan_prune_buffer_is_invisible(self, stream, capacity):
        """The engine-layer switch build_plan exposes is behaviourally inert."""
        queries = {
            "a": Spring([100.0, 101.0, 99.0], epsilon=3.0),
            "b": Spring([100.5, 99.5], epsilon=3.0),
        }
        queries2 = {
            "a": Spring([100.0, 101.0, 99.0], epsilon=3.0),
            "b": Spring([100.5, 99.5], epsilon=3.0),
        }
        plain = build_plan(queries, prune_buffer=None)
        pruned = build_plan(queries2, prune_buffer=capacity)
        assert len(plain.banks) == len(pruned.banks) == 1
        expected = _engine_events(plain.banks[0].engine, stream, False)
        got = _engine_events(pruned.banks[0].engine, stream, False)
        assert got == expected
