"""Property tests: checkpoint resume exactness and vector/scalar parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Spring, VectorSpring
from repro.core.checkpoint import load_state, save_state

finite_floats = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


def sequences(min_size, max_size):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


# Values on a quarter grid make every squared difference a multiple of
# 1/16, so accumulated distances and their k-fold sums are *exact* in
# float64.  The duplicated-channels property below compares how scalar
# and k-channel runs break distance ties; with inexact floats a tie on
# one side can round to a non-tie on the other (e.g. x=[1.0, 0.25, 0.25],
# y=[1.1, 0.0, 0.0]: the scalar run ties ends 2 and 3 while the tripled
# run does not), so the property only genuinely holds on an exact grid.
quarter_floats = st.integers(min_value=-80, max_value=80).map(lambda n: n / 4.0)


def quarter_sequences(min_size, max_size):
    return st.lists(quarter_floats, min_size=min_size, max_size=max_size)


def _drain(matcher, values):
    matches = matcher.extend(values)
    final = matcher.flush()
    if final:
        matches.append(final)
    return [(m.start, m.end, round(m.distance, 9), m.output_time) for m in matches]


@settings(max_examples=25, deadline=None)
@given(
    x=sequences(4, 50),
    y=sequences(1, 5),
    epsilon=st.floats(min_value=0.1, max_value=30.0),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_checkpoint_resume_is_invisible(x, y, epsilon, cut_fraction):
    """Cutting the stream at any point, serialising, and resuming
    produces exactly the uninterrupted match stream."""
    cut = int(len(x) * cut_fraction)
    baseline = _drain(Spring(y, epsilon=epsilon), x)

    first = Spring(y, epsilon=epsilon)
    head = [
        (m.start, m.end, round(m.distance, 9), m.output_time)
        for m in first.extend(x[:cut])
    ]
    restored = load_state(save_state(first))
    tail = _drain(restored, x[cut:])
    assert head + tail == baseline


@settings(max_examples=25, deadline=None)
@given(
    x=sequences(2, 40),
    y=sequences(1, 5),
    epsilon=st.floats(min_value=0.1, max_value=30.0),
)
def test_vector_k1_equals_scalar(x, y, epsilon):
    """VectorSpring with k = 1 is indistinguishable from Spring."""
    scalar = _drain(Spring(y, epsilon=epsilon), x)
    vector = _drain(
        VectorSpring(np.asarray(y).reshape(-1, 1), epsilon=epsilon),
        np.asarray(x).reshape(-1, 1),
    )
    assert scalar == vector


@settings(max_examples=25, deadline=None)
@given(
    x=quarter_sequences(2, 30),
    y=quarter_sequences(1, 4),
    epsilon=st.integers(min_value=1, max_value=120).map(lambda n: n / 4.0),
    k=st.integers(min_value=2, max_value=4),
)
def test_duplicated_channels_scale_distances_by_k(x, y, epsilon, k):
    """Copying the same signal into k channels multiplies every distance
    by k and preserves all positions and output times."""

    def drain_unrounded(matcher, values):
        matches = matcher.extend(values)
        final = matcher.flush()
        if final:
            matches.append(final)
        return [(m.start, m.end, m.distance, m.output_time) for m in matches]

    scalar_matches = drain_unrounded(Spring(y, epsilon=epsilon), x)
    xv = np.tile(np.asarray(x).reshape(-1, 1), (1, k))
    yv = np.tile(np.asarray(y).reshape(-1, 1), (1, k))
    vector_matches = drain_unrounded(VectorSpring(yv, epsilon=epsilon * k), xv)
    assert len(scalar_matches) == len(vector_matches)
    for (s1, e1, d1, o1), (s2, e2, d2, o2) in zip(
        scalar_matches, vector_matches
    ):
        assert (s1, e1, o1) == (s2, e2, o2)
        assert d2 == pytest.approx(k * d1, rel=1e-9, abs=1e-12)
