"""Wire-vs-direct parity: the socket adds transport, never semantics.

The property (ISSUE 9): ticks pushed through the network service
produce a per-stream match-event sequence **byte-identical** to
feeding the same values to a local :class:`StreamMonitor` via
``push_many`` — swept across every available kernel backend and both
admission strategies.  Byte-identical means the literal frame bytes:
both sides run their events through the one canonical encoder
(:func:`repro.service.protocol.encode_event`), and the wire side
compares the raw lines it read off the socket, unparsed.

Cross-stream interleaving is not part of the contract (producers are
independent connections racing into the engine queue); per-stream
order, per-stream sequence numbers, and every match field are.
"""

from __future__ import annotations

import json
from typing import Dict, List

import numpy as np
import pytest

from repro.core.backends import available_backends
from repro.core.monitor import StreamMonitor
from repro.service import protocol
from repro.service.client import ProducerClient, ServiceConnection
from repro.service.engine import EngineConfig
from repro.service.server import start_in_thread

BACKENDS = available_backends()
ADMISSIONS = ("flat", "grouped")

QUERIES = [
    ("spike", [0.0, 5.0, 0.0], 2.0, {}),
    ("dip", [5.0, 0.0, 5.0], 2.0, {}),
    ("ramp", [0.0, 2.0, 4.0, 6.0], 3.0, {}),
]
STREAMS = ("alpha", "beta")


def _workload(rng) -> Dict[str, List[np.ndarray]]:
    """Per-stream batch lists with enough structure to fire every query."""
    motifs = {
        "spike": [1.0, 0.1, 5.0, 0.1, 1.0],
        "dip": [1.0, 5.0, 0.2, 5.0, 1.0],
        "ramp": [1.0, 0.1, 2.0, 4.1, 5.9, 1.0],
    }
    out: Dict[str, List[np.ndarray]] = {}
    for stream in STREAMS:
        values: List[float] = []
        for _ in range(6):
            values.extend(rng.normal(1.0, 0.05, size=rng.integers(5, 30)))
            values.extend(
                motifs[list(motifs)[int(rng.integers(0, len(motifs)))]]
            )
        values.extend(rng.normal(1.0, 0.05, size=10))
        arr = np.asarray(values, dtype=np.float64)
        # Uneven batch boundaries: parity must not depend on framing.
        cuts = sorted(
            set(int(c) for c in rng.integers(1, arr.size, size=7))
        )
        out[stream] = [
            piece for piece in np.split(arr, cuts) if piece.size
        ]
    return out


def _direct_frames(
    batches: Dict[str, List[np.ndarray]], backend: str, admission: str
) -> Dict[str, List[bytes]]:
    """Ground truth: local push_many, events through the wire encoder."""
    monitor = StreamMonitor(
        keep_history=False, backend=backend, admission=admission
    )
    for stream in batches:
        monitor.add_stream(stream)
    for name, query, epsilon, kwargs in QUERIES:
        monitor.add_query(name, query, epsilon, **kwargs)
    seqs = {stream: 0 for stream in batches}
    frames: Dict[str, List[bytes]] = {stream: [] for stream in batches}

    def collect(event) -> None:
        seqs[event.stream] += 1
        frames[event.stream].append(
            protocol.encode_event(event.stream, seqs[event.stream], event)
        )

    monitor.subscribe(collect)
    for stream, pieces in batches.items():
        for piece in pieces:
            monitor.push_many(stream, piece)
    return frames


def _wire_frames(
    batches: Dict[str, List[np.ndarray]], backend: str, admission: str
) -> Dict[str, List[bytes]]:
    """The same workload through sockets; raw event lines, unparsed."""
    config = EngineConfig(
        streams=tuple(batches),
        backend=backend,
        admission=admission,
        queries=QUERIES,
    )
    handle = start_in_thread(config)
    try:
        sub = ServiceConnection("127.0.0.1", handle.port)
        sub.send({"type": "hello", "role": "subscriber"})
        sub.recv_type("hello_ack")
        expected = 0
        for stream, pieces in batches.items():
            producer = ProducerClient("127.0.0.1", handle.port, stream=stream)
            for piece in pieces:
                ack = producer.push(list(piece))
                assert "error" not in ack, ack
            producer.bye()
            producer.close()
            expected += handle.engine.sequence(stream)
        frames: Dict[str, List[bytes]] = {stream: [] for stream in batches}
        sub.settimeout(60.0)
        for _ in range(expected):
            line = sub.file.readline()
            assert line, "server closed before delivering every event"
            frame = json.loads(line)
            assert frame["type"] == "event"
            frames[frame["stream"]].append(line)
        sub.close()
        return frames
    finally:
        handle.stop(checkpoint=False)


@pytest.mark.parametrize("admission", ADMISSIONS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_wire_events_byte_identical_to_direct(rng, backend, admission):
    batches = _workload(rng)
    direct = _direct_frames(batches, backend, admission)
    # Sanity: the workload actually exercises every query.
    seen_queries = {
        json.loads(line)["query"]
        for lines in direct.values()
        for line in lines
    }
    assert seen_queries == {name for name, _, _, _ in QUERIES}
    wire = _wire_frames(batches, backend, admission)
    for stream in STREAMS:
        assert wire[stream] == direct[stream], (
            f"stream {stream!r}: wire events diverge from direct push_many "
            f"(backend={backend}, admission={admission})"
        )


def test_event_frames_use_serde_float_encoding(rng):
    """Distances on the wire survive exact round-trips (no repr drift)."""
    batches = _workload(rng)
    direct = _direct_frames(batches, "numpy", "flat")
    for lines in direct.values():
        for line in lines:
            frame = json.loads(line)
            _, _, event = protocol.decode_event(frame)
            assert event.match.distance == json.loads(line)["match"][
                "distance"
            ] or isinstance(frame["match"]["distance"], str)
            # Canonical bytes: re-encoding the decoded event reproduces
            # the original line exactly.
            stream, seq, event = protocol.decode_event(frame)
            assert protocol.encode_event(stream, seq, event) == line
