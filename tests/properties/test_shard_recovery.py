"""Kill-at-any-tick property: shard recovery is byte-exact.

The sharded runtime's contract (docs/algorithm.md §13) is that a worker
SIGKILLed at *any* tick resumes — from its newest shard checkpoint, or
from genesis via the supervisor's replay log — to the exact MatchEvent
suffix an unkilled run would have produced: same matches, same floats,
same merged order.  This suite sweeps the kill position across the
stream, including ticks chosen to land just before, on, and just after
checkpoint boundaries (the classic off-by-one crash windows).

A representative pair of positions runs in the default tier; the full
sweep is marked ``slow`` and runs in CI's dedicated shard job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monitor import StreamMonitor
from repro.runtime import ShardedMonitor, WorkerFaultInjector

CHECKPOINT_EVERY = 25


def _workload():
    rng = np.random.default_rng(1234)
    queries = {
        f"q{i}": (rng.standard_normal(4 + i).cumsum(), 2.0) for i in range(4)
    }
    streams = {
        "s0": rng.standard_normal(180).cumsum(),
        "s1": rng.standard_normal(180).cumsum(),
    }
    return queries, streams


def _expected(queries, streams) -> list:
    monitor = StreamMonitor(keep_history=False, backend="numpy")
    for name, (query, eps) in queries.items():
        monitor.add_query(name, query, eps)
    for name in streams:
        monitor.add_stream(name)
    events = []
    for off in range(0, 180, 6):
        for name, values in streams.items():
            events.extend(monitor.push_many(name, values[off:off + 6]))
    events.extend(monitor.flush())
    return events


def _run_with_kill(kill_tick: int, checkpoint_dir) -> "object":
    queries, streams = _workload()
    sharded = ShardedMonitor(
        shards=2,
        backend="numpy",
        heartbeat_interval=0.05,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=CHECKPOINT_EVERY,
        fault_injector=WorkerFaultInjector(kill={0: ("s0", kill_tick)}),
    )
    for name, (query, eps) in queries.items():
        sharded.add_query(name, query, eps)
    for name in streams:
        sharded.add_stream(name)
    with sharded:
        sharded.start()
        for off in range(0, 180, 6):
            for name, values in streams.items():
                sharded.push_many(name, values[off:off + 6])
        return sharded.finish(flush=True)


class TestKillAtAnyTick:
    @pytest.mark.parametrize("kill_tick", [24, 113])
    def test_representative_positions(self, tmp_path, kill_tick):
        queries, streams = _workload()
        expected = _expected(queries, streams)
        report = _run_with_kill(kill_tick, tmp_path)
        assert report.restarts == 1
        assert report.quarantined == []
        assert report.events == expected

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "kill_tick",
        # Boundary-adjacent positions around the checkpoint cadence
        # plus mid-interval and near-end positions.
        [1, 7, 25, 26, 49, 50, 51, 74, 76, 99, 140, 178],
    )
    def test_full_sweep(self, tmp_path, kill_tick):
        queries, streams = _workload()
        expected = _expected(queries, streams)
        report = _run_with_kill(kill_tick, tmp_path)
        assert report.restarts == 1
        assert report.events == expected

    @pytest.mark.slow
    @pytest.mark.parametrize("kill_tick", [7, 76, 140])
    def test_genesis_replay_without_checkpoints(self, kill_tick):
        # No checkpoint directory at all: recovery replays the whole
        # unit history from the supervisor's value log.  Same contract.
        queries, streams = _workload()
        expected = _expected(queries, streams)
        report = _run_with_kill(kill_tick, None)
        assert report.restarts == 1
        assert report.events == expected
