"""Property-based tests of Theorem 1 and the accuracy lemmas.

Hypothesis generates adversarial streams and queries; the properties are
the paper's central claims, checked against brute force.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import Spring
from repro.dtw import (
    all_ending_distances,
    brute_force_best,
    dtw_distance,
    subsequence_matrix,
)

# Dyadic rationals: exact float arithmetic keeps the vectorised scan's
# decisions identical to the reference recurrence (see
# tests/properties/test_disjoint.py for the rationale).
finite_floats = st.integers(min_value=-51200, max_value=51200).map(
    lambda k: k / 1024.0
)


def sequences(min_size, max_size):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


@settings(max_examples=40, deadline=None)
@given(x=sequences(1, 14), y=sequences(1, 5))
def test_theorem1_star_padding_equals_min_subsequence(x, y):
    """DTW(X, Y') == min over subsequences of DTW(X[ts:te], Y)."""
    star = float(subsequence_matrix(x, y)[:, -1].min())
    brute, _, _ = brute_force_best(x, y)
    assert star == pytest.approx(brute, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(x=sequences(1, 20), y=sequences(1, 5))
def test_lemma1_streaming_best_match_no_false_dismissal(x, y):
    """Streaming SPRING's best match equals the brute-force optimum."""
    # epsilon=0 disables disjoint reporting *except* for exact-zero
    # matches; exclude those so no reset perturbs best-match tracking.
    assume(float(all_ending_distances(x, y).min()) > 0.0)
    spring = Spring(y, epsilon=0.0)  # epsilon=0: pure best-match tracking
    spring.extend(x)
    best = spring.best_match
    brute_d, brute_s, brute_e = brute_force_best(x, y)
    assert best.distance == pytest.approx(brute_d, rel=1e-9, abs=1e-12)
    # Positions may differ only on exact distance ties.
    candidate = dtw_distance(x[best.start - 1 : best.end], y)
    assert candidate == pytest.approx(brute_d, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(x=sequences(1, 25), y=sequences(1, 5))
def test_streamed_ending_distances_equal_offline(x, y):
    offline = all_ending_distances(x, y)
    assume(float(offline.min()) > 0.0)  # zero-cost match would report+reset
    spring = Spring(y, epsilon=0.0)
    streamed = []
    for value in x:
        spring.step(value)
        streamed.append(spring.current_distances[-1])
    np.testing.assert_allclose(streamed, offline, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(x=sequences(1, 25), y=sequences(1, 5))
def test_reported_distance_is_a_real_alignment_cost(x, y):
    """Every reported distance is >= the true DTW of its interval (a
    finite cell value is always the cost of some real warping path; a
    reset can only hide better paths, not invent cheaper ones)."""
    spring = Spring(y, epsilon=10.0)
    matches = spring.extend(x)
    final = spring.flush()
    if final:
        matches.append(final)
    x_arr = np.asarray(x, dtype=float)
    for match in matches:
        true = dtw_distance(x_arr[match.start - 1 : match.end], y)
        assert true <= match.distance + 1e-9
