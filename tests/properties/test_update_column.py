"""Property-based equivalence of the vectorised and reference updates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SpringState, update_column, update_column_reference

# Exact zeros generate genuine ties (the interesting tie-break cases);
# nonzero costs stay within a sane dynamic range because sub-ulp cost
# differences (1e-240 vs 1.0) make the scan's `e - C` comparisons and
# the reference's direct comparisons resolve *ties* differently — the
# distances still agree, but the equally-optimal start may differ (see
# the float64 caveat in repro/core/state.py).
costs = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-3, max_value=1000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(cost_rows=st.lists(costs, min_size=1, max_size=25))
def test_scan_equals_reference_for_arbitrary_cost_streams(cost_rows):
    """Distances always agree; starts agree except at cells where the
    three Equation-7 candidates *tie*, where the scan's cumsum rounding
    may classify the tie differently — both answers are then equally
    optimal (the documented float64 caveat in repro/core/state.py)."""
    m = len(cost_rows[0])
    rows = [np.asarray(row[:m] + [0.0] * (m - len(row)), dtype=float) for row in cost_rows]
    a = SpringState.initial(m)
    b = SpringState.initial(m)
    for tick, cost in enumerate(rows, start=1):
        prev_d = b.d.copy()
        update_column(a, cost.copy(), tick)
        update_column_reference(b, cost.copy(), tick)
        np.testing.assert_allclose(a.d, b.d, rtol=1e-9, atol=1e-9)
        mismatched = set(np.flatnonzero(a.s != b.s).tolist())
        for i in sorted(mismatched):
            if i == 0:
                raise AssertionError("star-row start must always agree")
            horizontal = 0.0 if i == 1 else float(b.d[i - 1])
            candidates = sorted(
                [horizontal, float(prev_d[i]), float(prev_d[i - 1])]
            )
            near_tie = candidates[1] - candidates[0] <= 1e-9 * max(
                1.0, abs(candidates[0])
            )
            # A differing start may also just be inherited through a
            # horizontal chain from an already-excused tied cell.
            inherited = (
                i - 1 in mismatched
                and horizontal
                <= candidates[0] + 1e-9 * max(1.0, abs(candidates[0]))
            )
            assert near_tie or inherited, (
                f"start mismatch at i={i} without a candidate tie: "
                f"{candidates}"
            )


@settings(max_examples=40, deadline=None)
@given(
    cost_rows=st.lists(costs, min_size=2, max_size=20),
    reset_at=st.integers(min_value=1, max_value=10),
)
def test_scan_equals_reference_after_resets(cost_rows, reset_at):
    """Disjoint-query resets inject inf cells; equivalence must survive."""
    m = len(cost_rows[0])
    rows = [np.asarray(row[:m] + [0.0] * (m - len(row)), dtype=float) for row in cost_rows]
    a = SpringState.initial(m)
    b = SpringState.initial(m)
    for tick, cost in enumerate(rows, start=1):
        update_column(a, cost.copy(), tick)
        update_column_reference(b, cost.copy(), tick)
        if tick % reset_at == 0 and m > 1:
            a.d[m // 2 :] = np.inf
            b.d[m // 2 :] = np.inf
        np.testing.assert_allclose(a.d, b.d, rtol=1e-9, atol=1e-9)
