"""Unit tests for atomic snapshot management."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.exceptions import CheckpointError, ValidationError
from repro.runtime import CheckpointManager


def _monitor(rng) -> StreamMonitor:
    monitor = StreamMonitor()
    monitor.add_stream("s")
    monitor.add_query("q", rng.normal(size=4), epsilon=2.0)
    return monitor


class TestSave:
    def test_atomic_file_appears_no_tmp_left(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path / "ckpt")
        path = manager.save(_monitor(rng), watermark=5, stream_ticks={"s": 5})
        assert path.exists()
        assert path.name == "checkpoint-000000000005.json"
        assert not list(path.parent.glob("*.tmp"))

    def test_payload_is_strict_json(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        monitor = _monitor(rng)
        monitor.push("s", 1.0)  # warping columns now hold infinities
        path = manager.save(monitor, watermark=1, stream_ticks={"s": 1})
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        json.loads(text)  # parseable by a strict reader

    def test_rotation_keeps_newest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, keep=2)
        monitor = _monitor(rng)
        for w in (1, 2, 3, 4):
            manager.save(monitor, watermark=w, stream_ticks={"s": w})
        names = [p.name for p in manager.snapshots()]
        assert names == [
            "checkpoint-000000000003.json",
            "checkpoint-000000000004.json",
        ]

    def test_rejects_bad_config(self, tmp_path, rng):
        with pytest.raises(ValidationError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ValidationError):
            CheckpointManager(tmp_path).save(_monitor(rng), watermark=-1)


class TestRecovery:
    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path / "nowhere").latest() is None

    def test_resume_round_trips_monitor(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        monitor = _monitor(rng)
        monitor.push("s", 1.5)
        manager.save(
            monitor, watermark=1, stream_ticks={"s": 1}, events_emitted=0
        )
        restored, meta = manager.resume()
        assert meta == {
            "watermark": 1,
            "stream_ticks": {"s": 1},
            "events_emitted": 0,
            "extra": {},
        }
        assert restored.matcher("s", "q").tick == 1

    def test_corrupt_newest_falls_back(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        monitor = _monitor(rng)
        manager.save(monitor, watermark=1, stream_ticks={"s": 1})
        monitor.push("s", 2.0)
        good = manager.save(monitor, watermark=2, stream_ticks={"s": 2})
        # Simulate a torn write of a newer snapshot.
        torn = tmp_path / "checkpoint-000000000003.json"
        torn.write_text(good.read_text()[: 40])
        payload = manager.latest()
        assert payload is not None and payload["watermark"] == 2

    def test_resume_raises_when_nothing_readable(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        (tmp_path / "checkpoint-000000000001.json").write_text("{ nope")
        with pytest.raises(CheckpointError):
            manager.resume()

    def test_extra_round_trips(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        manager.save(
            _monitor(rng),
            watermark=3,
            stream_ticks={"s": 3},
            extra={"last_command": 7, "note": "x"},
        )
        _, meta = manager.resume()
        assert meta["extra"] == {"last_command": 7, "note": "x"}


class _RecordingOs:
    """Facade over :mod:`os` that logs the durability-relevant calls.

    Delegates to the real functions so the snapshot actually lands on
    disk; the log lets the test assert the fsync/replace/dir-fsync
    *ordering* that makes the write crash-durable.
    """

    O_DIRECTORY = getattr(os, "O_DIRECTORY", 0)
    O_RDONLY = os.O_RDONLY

    def __init__(self) -> None:
        self.calls = []
        self._dir_fds = set()

    def fsync(self, fd: int) -> None:
        kind = "fsync_dir" if fd in self._dir_fds else "fsync_file"
        self.calls.append(kind)
        os.fsync(fd)

    def replace(self, src, dst) -> None:
        self.calls.append("replace")
        os.replace(src, dst)

    def open(self, path, flags) -> int:
        fd = os.open(path, flags)
        self._dir_fds.add(fd)
        self.calls.append("open_dir")
        return fd

    def close(self, fd: int) -> None:
        self.calls.append("close_dir")
        self._dir_fds.discard(fd)
        os.close(fd)


class TestDurability:
    def test_file_fsync_then_replace_then_directory_fsync(
        self, tmp_path, rng
    ):
        shim = _RecordingOs()
        manager = CheckpointManager(tmp_path, os_module=shim)
        path = manager.save(_monitor(rng), watermark=1, stream_ticks={"s": 1})
        assert path.exists()
        assert shim.calls == [
            "fsync_file",  # snapshot bytes reach the disk first,
            "replace",     # then the atomic rename,
            "open_dir",    # then the directory entry is made durable
            "fsync_dir",
            "close_dir",
        ]

    def test_directory_fsync_skipped_without_o_directory(
        self, tmp_path, rng
    ):
        class _NoDirOs:
            """Windows-shaped os: no O_DIRECTORY, no directory open."""

            O_RDONLY = os.O_RDONLY
            fsync = staticmethod(os.fsync)
            replace = staticmethod(os.replace)

            def open(self, path, flags):  # pragma: no cover - must not run
                raise AssertionError("directory open attempted")

        manager = CheckpointManager(tmp_path, os_module=_NoDirOs())
        path = manager.save(_monitor(rng), watermark=1, stream_ticks={"s": 1})
        assert path.exists()

    def test_snapshot_survives_via_real_os(self, tmp_path, rng):
        # Default os module: the full durable sequence must not error
        # and the snapshot must be recoverable.
        manager = CheckpointManager(tmp_path)
        manager.save(_monitor(rng), watermark=2, stream_ticks={"s": 2})
        restored, meta = manager.resume()
        assert meta["watermark"] == 2
