"""Unit tests for RetryPolicy classification and backoff."""

from __future__ import annotations

import pytest

from repro.exceptions import TransientStreamError, ValidationError
from repro.runtime import FATAL, TRANSIENT, RetryPolicy


class TestClassify:
    def test_transient_defaults(self):
        policy = RetryPolicy()
        assert policy.classify(TransientStreamError("x")) == TRANSIENT
        assert policy.classify(IOError("x")) == TRANSIENT
        assert policy.classify(TimeoutError("x")) == TRANSIENT
        assert policy.classify(ConnectionError("x")) == TRANSIENT

    def test_unknown_is_fatal(self):
        policy = RetryPolicy()
        assert policy.classify(RuntimeError("x")) == FATAL
        assert policy.classify(ValueError("x")) == FATAL

    def test_fatal_overrides_transient(self):
        policy = RetryPolicy(fatal_errors=(FileNotFoundError,))
        # FileNotFoundError is an OSError (=IOError) but fatal wins.
        assert policy.classify(FileNotFoundError("x")) == FATAL
        assert policy.classify(IOError("x")) == TRANSIENT


class TestDelay:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff=1.0, max_delay=1.0, jitter=0.2, seed=3
        )
        delays = [policy.delay(1) for _ in range(200)]
        assert all(0.8 <= d <= 1.2 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_jitter_deterministic_per_seed(self):
        a = [RetryPolicy(jitter=0.5, seed=7).delay(1) for _ in range(1)]
        b = [RetryPolicy(jitter=0.5, seed=7).delay(1) for _ in range(1)]
        assert a == b

    def test_rejects_bad_attempt(self):
        with pytest.raises(ValidationError):
            RetryPolicy().delay(0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"backoff": 0.5},
            {"jitter": 2.0},
            {"quarantine_after": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)
