"""End-to-end tests for the sharded multi-process serving runtime.

Every test here compares the sharded run's *merged* event list against a
single-process :class:`StreamMonitor` oracle fed the identical push-call
interleaving — the delivery contract is byte-identity (same events, same
order, same floats), not mere set equality.  Worker counts stay at 2 and
streams short because CI runs these on small machines; the protocol
being exercised (rings, checkpoints, restarts, rebalance, lifecycle
barriers) does not depend on scale.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core.monitor import StreamMonitor
from repro.exceptions import ShardingError, ValidationError
from repro.runtime import ShardedMonitor, WorkerFaultInjector


def _workload(seed: int, nstreams: int = 2, nqueries: int = 4, n: int = 200):
    rng = np.random.default_rng(seed)
    queries = {
        f"q{i}": (rng.standard_normal(5 + i % 3).cumsum(), 2.0)
        for i in range(nqueries)
    }
    streams = {
        f"s{j}": rng.standard_normal(n).cumsum() for j in range(nstreams)
    }
    return queries, streams


def _oracle(queries, streams, chunk: int = 8) -> list:
    monitor = StreamMonitor(keep_history=False, backend="numpy")
    for name, (query, eps) in queries.items():
        monitor.add_query(name, query, eps)
    for name in streams:
        monitor.add_stream(name)
    events = []
    n = len(next(iter(streams.values())))
    for off in range(0, n, chunk):
        for name, values in streams.items():
            events.extend(monitor.push_many(name, values[off:off + chunk]))
    events.extend(monitor.flush())
    return events


def _run_sharded(
    queries,
    streams,
    chunk: int = 8,
    **kwargs,
):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("backend", "numpy")
    kwargs.setdefault("heartbeat_interval", 0.05)
    sharded = ShardedMonitor(**kwargs)
    for name, (query, eps) in queries.items():
        sharded.add_query(name, query, eps)
    for name in streams:
        sharded.add_stream(name)
    n = len(next(iter(streams.values())))
    with sharded:
        sharded.start()
        for off in range(0, n, chunk):
            for name, values in streams.items():
                sharded.push_many(name, values[off:off + chunk])
        return sharded.finish(flush=True)


def _by_query(events) -> Dict[Tuple[str, str], list]:
    grouped: Dict[Tuple[str, str], list] = {}
    for event in events:
        grouped.setdefault((event.stream, event.query), []).append(
            event.match
        )
    return grouped


class TestMergedByteIdentity:
    def test_matches_single_process_run(self):
        queries, streams = _workload(0, nstreams=3, nqueries=6, n=120)
        expected = _oracle(queries, streams, chunk=10)
        report = _run_sharded(queries, streams, chunk=10)
        assert report.events == expected
        assert report.restarts == 0
        assert report.quarantined == []

    def test_single_shard_degenerate(self):
        queries, streams = _workload(1, nstreams=2, nqueries=2, n=80)
        expected = _oracle(queries, streams)
        report = _run_sharded(queries, streams, shards=1)
        assert report.events == expected

    def test_events_property_matches_report(self):
        queries, streams = _workload(2, n=80)
        sharded = ShardedMonitor(
            shards=2, backend="numpy", heartbeat_interval=0.05
        )
        for name, (query, eps) in queries.items():
            sharded.add_query(name, query, eps)
        for name in streams:
            sharded.add_stream(name)
        with sharded:
            sharded.start()
            for name, values in streams.items():
                sharded.push_many(name, values)
            report = sharded.finish(flush=True)
        assert sharded.events == report.events


class TestChaosDrill:
    def test_kill_each_worker_once_is_byte_identical(self, tmp_path):
        # The acceptance drill: every worker dies exactly once at a
        # seeded tick; restarted workers resume from their shard
        # checkpoints and the merged output is byte-identical to the
        # fault-free single-process run.
        queries, streams = _workload(7, nstreams=2, nqueries=4, n=200)
        expected = _oracle(queries, streams)
        fault = WorkerFaultInjector(kill={0: ("s0", 60), 1: ("s1", 110)})
        report = _run_sharded(
            queries,
            streams,
            checkpoint_dir=tmp_path,
            checkpoint_every=25,
            fault_injector=fault,
        )
        assert report.restarts == 2
        assert report.quarantined == []
        assert report.events == expected
        assert {h.restarts for h in report.healths.values()} == {1}

    def test_kill_without_checkpoints_replays_from_genesis(self):
        # No checkpoint directory: recovery rebuilds matcher state by
        # replaying the supervisor's value log. Same contract.
        queries, streams = _workload(8, nstreams=2, nqueries=3, n=120)
        expected = _oracle(queries, streams)
        fault = WorkerFaultInjector(kill={1: ("s1", 40)})
        report = _run_sharded(queries, streams, fault_injector=fault)
        assert report.restarts == 1
        assert report.events == expected

    def test_kill_during_backpressured_push_recovers(self, tmp_path):
        # Regression: a worker dying while push_many is blocked on a
        # full ring leaves the push watermark ahead of the ring's
        # write_seq; repositioning the replacement's cursor used to
        # raise ValidationError out of the user's push call instead of
        # recovering.  The whole stream is pushed in one call against a
        # tiny ring so the supervisor is guaranteed to be mid-push when
        # it detects the death.
        queries, streams = _workload(13, nstreams=1, nqueries=4, n=400)
        expected = _oracle(queries, streams, chunk=400)
        fault = WorkerFaultInjector(kill={0: ("s0", 100)})
        report = _run_sharded(
            queries,
            streams,
            chunk=400,
            ring_capacity=64,
            batch_limit=32,
            checkpoint_dir=tmp_path,
            checkpoint_every=25,
            fault_injector=fault,
        )
        assert report.restarts == 1
        assert report.quarantined == []
        assert report.events == expected
        # The killed incarnation's event-queue pump thread must not
        # outlive teardown: a leak here means the per-incarnation
        # queue isolation (SIGKILL-poisoned feeder locks) regressed.
        # The dead gen's pump exits asynchronously at queue EOF, so
        # allow it a moment rather than asserting an instant.
        deadline = time.monotonic() + 5.0
        while [
            t
            for t in threading.enumerate()
            if t.name.startswith("shard-pump-")
        ]:
            assert time.monotonic() < deadline, threading.enumerate()
            time.sleep(0.01)

    def test_kill_during_backpressured_push_without_checkpoints(self):
        # Same crash window, genesis-replay recovery path.
        queries, streams = _workload(14, nstreams=1, nqueries=3, n=300)
        expected = _oracle(queries, streams, chunk=300)
        fault = WorkerFaultInjector(kill={1: ("s0", 80)})
        report = _run_sharded(
            queries,
            streams,
            chunk=300,
            ring_capacity=64,
            batch_limit=32,
            fault_injector=fault,
        )
        assert report.restarts == 1
        assert report.events == expected

    def test_quarantine_and_rebalance(self, tmp_path):
        # Worker 0 crashes in every generation; with max_restarts=1 the
        # second death quarantines it and its units move to worker 1.
        # No events are lost or duplicated across the rebalance.
        queries, streams = _workload(7, nstreams=2, nqueries=4, n=200)
        expected = _oracle(queries, streams)
        fault = WorkerFaultInjector(kill={0: ("s0", 60)}, generations=5)
        report = _run_sharded(
            queries,
            streams,
            checkpoint_dir=tmp_path,
            checkpoint_every=25,
            fault_injector=fault,
            max_restarts=1,
        )
        assert report.quarantined == [0]
        assert report.rebalances > 0
        assert report.events == expected
        assert report.healths[0].quarantined
        assert report.healths[0].last_error

    def test_all_workers_quarantined_raises(self):
        queries, streams = _workload(9, nstreams=1, nqueries=1, n=120)
        fault = WorkerFaultInjector(
            kill={0: ("s0", 30), 1: ("s0", 30)}, generations=10
        )
        sharded = ShardedMonitor(
            shards=2,
            backend="numpy",
            heartbeat_interval=0.05,
            fault_injector=fault,
            max_restarts=0,
        )
        for name, (query, eps) in queries.items():
            sharded.add_query(name, query, eps)
        sharded.add_stream("s0")
        with pytest.raises(ShardingError):
            with sharded:
                sharded.start()
                for off in range(0, 120, 8):
                    sharded.push_many("s0", streams["s0"][off:off + 8])
                sharded.finish(flush=True)

    def test_stall_detection_restarts_hung_worker(self):
        # A hung worker (stops heartbeating mid-stream) is SIGKILLed by
        # the supervisor and its replacement resumes exactly.
        rng = np.random.default_rng(5)
        query = rng.standard_normal(5).cumsum()
        values = rng.standard_normal(120).cumsum()
        oracle = StreamMonitor(keep_history=False, backend="numpy")
        oracle.add_query("q", query, 2.0)
        oracle.add_stream("s")
        expected = list(oracle.push_many("s", values)) + list(oracle.flush())

        sharded = ShardedMonitor(
            shards=2,
            backend="numpy",
            heartbeat_interval=0.05,
            stall_timeout=1.0,
            fault_injector=WorkerFaultInjector(hang={0: ("s", 40)}),
        )
        sharded.add_query("q", query, 2.0)
        sharded.add_stream("s")
        with sharded:
            sharded.start()
            sharded.push_many("s", values)
            report = sharded.finish(flush=True)
        assert report.events == expected
        assert report.restarts == 1
        assert "stalled" in (report.healths[0].last_error or "")


class TestLiveLifecycle:
    def test_add_and_remove_without_restart(self):
        # Queries join and leave a *running* monitor; workers are never
        # restarted and no tick is dropped.  The oracle applies the
        # same lifecycle at the same per-stream watermarks, so full
        # merged order must be identical.
        rng = np.random.default_rng(3)
        q0 = rng.standard_normal(5).cumsum()
        q1 = rng.standard_normal(6).cumsum()
        q2 = rng.standard_normal(4).cumsum()
        vals = {
            "s0": rng.standard_normal(150).cumsum(),
            "s1": rng.standard_normal(150).cumsum(),
        }

        oracle = StreamMonitor(keep_history=False, backend="numpy")
        oracle.add_query("q0", q0, 2.0)
        oracle.add_query("q1", q1, 2.0)
        oracle.add_stream("s0")
        oracle.add_stream("s1")
        expected = []
        for off in range(0, 50, 5):
            for s in vals:
                expected.extend(oracle.push_many(s, vals[s][off:off + 5]))
        oracle.add_query("q2", q2, 2.5)  # live add at watermark 50
        for off in range(50, 100, 5):
            for s in vals:
                expected.extend(oracle.push_many(s, vals[s][off:off + 5]))
        oracle.remove_query("q1")  # live remove at watermark 100
        for off in range(100, 150, 5):
            for s in vals:
                expected.extend(oracle.push_many(s, vals[s][off:off + 5]))
        expected.extend(oracle.flush())

        sharded = ShardedMonitor(
            shards=2, backend="numpy", heartbeat_interval=0.05
        )
        sharded.add_query("q0", q0, 2.0)
        sharded.add_query("q1", q1, 2.0)
        sharded.add_stream("s0")
        sharded.add_stream("s1")
        with sharded:
            sharded.start()
            for off in range(0, 50, 5):
                for s in vals:
                    sharded.push_many(s, vals[s][off:off + 5])
            sharded.add_query("q2", q2, 2.5)
            for off in range(50, 100, 5):
                for s in vals:
                    sharded.push_many(s, vals[s][off:off + 5])
            sharded.remove_query("q1")
            for off in range(100, 150, 5):
                for s in vals:
                    sharded.push_many(s, vals[s][off:off + 5])
            report = sharded.finish(flush=True)
        assert report.events == expected
        assert report.restarts == 0  # lifecycle never restarts workers
        # No dropped ticks: every stream processed its full length.
        assert report.ticks == 300

    def test_swap_query_consistency_contract(self):
        # swap keeps the old query's merge position, which a
        # remove+add oracle cannot express — so the contract is checked
        # per (stream, query) sequence: old-template events confirmed
        # at ticks <= W are all delivered, the new template starts
        # fresh at W+1, and nothing interleaves.
        rng = np.random.default_rng(3)
        q0 = rng.standard_normal(5).cumsum()
        q2 = rng.standard_normal(4).cumsum()
        vals = {
            "s0": rng.standard_normal(150).cumsum(),
            "s1": rng.standard_normal(150).cumsum(),
        }

        oracle = StreamMonitor(keep_history=False, backend="numpy")
        oracle.add_query("q0", q0, 2.0)
        oracle.add_stream("s0")
        oracle.add_stream("s1")
        expected = []
        for off in range(0, 100, 5):
            for s in vals:
                expected.extend(oracle.push_many(s, vals[s][off:off + 5]))
        oracle.remove_query("q0")
        oracle.add_query("q0", q2 * 0.5, 3.0)  # oracle's stand-in swap
        for off in range(100, 150, 5):
            for s in vals:
                expected.extend(oracle.push_many(s, vals[s][off:off + 5]))
        expected.extend(oracle.flush())

        sharded = ShardedMonitor(
            shards=2, backend="numpy", heartbeat_interval=0.05
        )
        sharded.add_query("q0", q0, 2.0)
        sharded.add_stream("s0")
        sharded.add_stream("s1")
        with sharded:
            sharded.start()
            for off in range(0, 100, 5):
                for s in vals:
                    sharded.push_many(s, vals[s][off:off + 5])
            sharded.swap_query("q0", q2 * 0.5, 3.0)
            for off in range(100, 150, 5):
                for s in vals:
                    sharded.push_many(s, vals[s][off:off + 5])
            report = sharded.finish(flush=True)
        assert _by_query(report.events) == _by_query(expected)
        # Old-template events all confirmed at or before the swap
        # watermark; new-template matches never end before it.
        for event in report.events:
            match = event.match
            if match.output_time is not None and match.output_time <= 100:
                assert match.end <= 100
            else:
                assert match.end > 100 or match.output_time is None

    def test_swap_validates_before_touching_live_state(self):
        queries, streams = _workload(11, nstreams=1, nqueries=1, n=40)
        sharded = ShardedMonitor(
            shards=1, backend="numpy", heartbeat_interval=0.05
        )
        for name, (query, eps) in queries.items():
            sharded.add_query(name, query, eps)
        sharded.add_stream("s0")
        with sharded:
            sharded.start()
            sharded.push_many("s0", streams["s0"])
            with pytest.raises(ValidationError):
                sharded.swap_query("q0", np.asarray([]), 1.0)  # empty query
            with pytest.raises(ValidationError):
                sharded.swap_query("nope", np.asarray([1.0, 2.0]), 1.0)
            # The failed swaps changed nothing: the run still drains.
            report = sharded.finish(flush=True)
        assert sharded.queries == ["q0"]
        assert report.ticks == 40


class TestSubscribersAndMetrics:
    def test_callbacks_fire_and_errors_are_isolated(self):
        queries, streams = _workload(0, nstreams=2, nqueries=4, n=120)
        expected = _oracle(queries, streams)
        sharded = ShardedMonitor(
            shards=2, backend="numpy", heartbeat_interval=0.05
        )
        seen: List[object] = []

        def bomb(event):
            raise ValueError("subscriber bug")

        sharded.subscribe(bomb)
        sharded.subscribe(seen.append)
        for name, (query, eps) in queries.items():
            sharded.add_query(name, query, eps)
        for name in streams:
            sharded.add_stream(name)
        with sharded:
            sharded.start()
            for off in range(0, 120, 8):
                for name, values in streams.items():
                    sharded.push_many(name, values[off:off + 8])
            report = sharded.finish(flush=True)
        assert len(report.events) == len(expected)
        # Arrival order may interleave shards; the set matches.
        assert {id(e) for e in seen} == {id(e) for e in report.events}
        assert len(sharded.callback_errors) == len(expected)
        assert all(
            isinstance(err, ValueError)
            for _, err in sharded.callback_errors
        )

    def test_worker_metrics_aggregate_under_shard_label(self):
        queries, streams = _workload(5, nstreams=1, nqueries=2, n=120)
        sharded = ShardedMonitor(
            shards=2, backend="numpy", heartbeat_interval=0.05
        )
        registry = sharded.enable_metrics()
        for name, (query, eps) in queries.items():
            sharded.add_query(name, query, eps)
        sharded.add_stream("s0")
        with sharded:
            sharded.start()
            sharded.push_many("s0", streams["s0"])
            sharded.finish(flush=True)
        snapshot = registry.snapshot()
        assert "shard_restarts_total" in snapshot
        assert "shard_rebalances_total" in snapshot
        assert "shard_workers_alive" in snapshot
        ticks = snapshot["spring_stream_ticks_total"]["series"]
        # Worker series carry the shard + restart-generation labels the
        # supervisor adds (generation keying keeps post-restart
        # counters from aliasing into pre-restart series).
        assert ticks and all(
            "shard" in s["labels"] and "gen" in s["labels"] for s in ticks
        )
        assert sum(s["value"] for s in ticks) == 240  # 2 units x 120


class TestValidation:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValidationError):
            ShardedMonitor(shards=0)
        with pytest.raises(ValidationError):
            ShardedMonitor(ring_capacity=8, batch_limit=64)

    def test_lifecycle_ordering_rules(self):
        sharded = ShardedMonitor(
            shards=1, backend="numpy", heartbeat_interval=0.05
        )
        with pytest.raises(ValidationError):
            sharded.start()  # no streams yet
        sharded.add_stream("s")
        with pytest.raises(ValidationError):
            sharded.add_stream("s")  # duplicate
        with pytest.raises(ValidationError):
            sharded.push("s", 1.0)  # not started
        sharded.add_query("q", np.asarray([1.0, 2.0, 1.0]), 0.5)
        with sharded:
            sharded.start()
            with pytest.raises(ValidationError):
                sharded.start()  # double start
            with pytest.raises(ValidationError):
                sharded.add_stream("late")  # streams are start-frozen
            with pytest.raises(ValidationError):
                sharded.push("nope", 1.0)  # unknown stream
            with pytest.raises(ValidationError):
                sharded.push("s", float("nan"))  # finite-only data plane
            sharded.push("s", 1.0)
            report = sharded.finish(flush=True)
        assert report.ticks == 1
        with pytest.raises(ValidationError):
            sharded.push("s", 2.0)  # finished
