"""Unit tests for the supervised ingestion loop."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.exceptions import TransientStreamError, ValidationError
from repro.runtime import CheckpointManager, RetryPolicy, SupervisedRunner
from repro.streams import ArraySource, FlakySource
from repro.streams.source import StreamSource


def _key(event):
    return (
        event.stream,
        event.query,
        event.match.start,
        event.match.end,
        event.match.distance,
        event.match.output_time,
    )


def _planted_stream(rng, pattern, pad=25):
    return np.concatenate(
        [rng.normal(size=pad) + 9, pattern, rng.normal(size=pad) + 9]
    )


class _AlwaysFails(StreamSource):
    """A source whose every pull raises; error type is configurable."""

    def __init__(self, error: BaseException, name: str = "bad") -> None:
        super().__init__(name)
        self.error = error
        self.attempts = 0

    def __iter__(self) -> Iterator[object]:
        return self

    def __next__(self) -> object:
        self.attempts += 1
        raise self.error


def _fast_policy(**kwargs):
    kwargs.setdefault("base_delay", 0.0)
    return RetryPolicy(**kwargs)


class TestCleanRun:
    def test_matches_unsupervised_run(self, rng):
        pattern = rng.normal(size=6)
        stream = _planted_stream(rng, pattern)

        reference = StreamMonitor()
        reference.add_stream("s")
        reference.add_query("q", pattern, epsilon=1e-9)
        expected = [
            _key(e) for e in reference.push_many("s", stream) + reference.flush()
        ]

        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)
        runner = SupervisedRunner(monitor, [ArraySource(stream, name="s")])
        report = runner.run()
        assert [_key(e) for e in report.events] == expected
        assert report.ticks == len(stream)
        assert report.health["s"].exhausted
        assert not report.dead_letters

    def test_multi_stream_round_robin(self, rng):
        pattern = rng.normal(size=5)
        xs = _planted_stream(rng, pattern, pad=10)
        ys = _planted_stream(rng, pattern, pad=12)
        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)
        runner = SupervisedRunner(
            monitor,
            [ArraySource(xs, name="x"), ArraySource(ys, name="y")],
        )
        report = runner.run()
        assert {e.stream for e in report.events} == {"x", "y"}
        assert report.ticks == len(xs) + len(ys)

    def test_max_ticks_stops_early_without_flush(self, rng):
        monitor = StreamMonitor()
        monitor.add_query("q", rng.normal(size=4), epsilon=1e-9)
        runner = SupervisedRunner(
            monitor, [ArraySource(rng.normal(size=50), name="s")]
        )
        report = runner.run(max_ticks=10)
        assert report.ticks == 10
        assert runner.watermark == 10
        assert not report.health["s"].exhausted


class TestRetries:
    def test_flaky_source_is_exact(self, rng):
        pattern = rng.normal(size=6)
        stream = _planted_stream(rng, pattern)
        reference = StreamMonitor()
        reference.add_stream("s")
        reference.add_query("q", pattern, epsilon=1e-9)
        expected = [
            _key(e) for e in reference.push_many("s", stream) + reference.flush()
        ]

        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)
        sleeps: List[float] = []
        runner = SupervisedRunner(
            monitor,
            [FlakySource(ArraySource(stream, name="s"), rate=0.3, seed=2)],
            policy=RetryPolicy(base_delay=0.125, jitter=0.0),
            sleep=sleeps.append,
        )
        report = runner.run()
        assert [_key(e) for e in report.events] == expected
        assert report.health["s"].retries == len(sleeps) > 0
        assert all(s >= 0.125 for s in sleeps)  # backoff floor

    def test_backoff_schedule_is_exponential(self):
        source = _AlwaysFails(TransientStreamError("x"))
        monitor = StreamMonitor()
        sleeps: List[float] = []
        runner = SupervisedRunner(
            monitor,
            [source],
            policy=RetryPolicy(
                max_attempts=4, base_delay=0.1, backoff=2.0,
                max_delay=10.0, jitter=0.0, quarantine_after=1,
            ),
            sleep=sleeps.append,
        )
        report = runner.run()
        # 4 attempts -> 3 backoff sleeps, doubling each time.
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])
        assert report.health["bad"].quarantined
        assert source.attempts == 4


class TestQuarantine:
    def test_fatal_error_quarantines_immediately(self, rng):
        source = _AlwaysFails(RuntimeError("disk on fire"))
        monitor = StreamMonitor()
        monitor.add_query("q", rng.normal(size=4), epsilon=1e-9)
        runner = SupervisedRunner(monitor, [source], policy=_fast_policy())
        report = runner.run()
        health = report.health["bad"]
        assert health.quarantined
        assert source.attempts == 1  # no retries for fatal errors
        assert "disk on fire" in health.quarantine_reason

    def test_transient_exhaustion_quarantines_after_n(self):
        source = _AlwaysFails(TransientStreamError("flap"))
        monitor = StreamMonitor()
        runner = SupervisedRunner(
            monitor,
            [source],
            policy=_fast_policy(max_attempts=2, quarantine_after=3),
        )
        report = runner.run()
        health = report.health["bad"]
        assert health.quarantined
        assert health.failures == 3  # three exhausted budgets
        assert source.attempts == 6  # 3 rounds x 2 attempts

    def test_healthy_streams_survive_a_dead_one(self, rng):
        pattern = rng.normal(size=5)
        stream = _planted_stream(rng, pattern, pad=10)
        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)
        runner = SupervisedRunner(
            monitor,
            [
                _AlwaysFails(RuntimeError("boom"), name="dead"),
                ArraySource(stream, name="alive"),
            ],
            policy=_fast_policy(),
        )
        report = runner.run()
        assert report.health["dead"].quarantined
        assert report.health["alive"].exhausted
        assert [e.stream for e in report.events] == ["alive"]

    def test_quarantined_stream_not_pulled_on_next_run(self):
        source = _AlwaysFails(RuntimeError("boom"))
        runner = SupervisedRunner(
            StreamMonitor(), [source], policy=_fast_policy()
        )
        runner.run()
        attempts = source.attempts
        runner.run()
        assert source.attempts == attempts  # untouched


class TestDeadLetters:
    def test_failing_callback_never_stops_the_loop(self, rng):
        pattern = rng.normal(size=5)
        stream = np.concatenate(
            [
                rng.normal(size=10) + 9,
                pattern,
                rng.normal(size=10) + 9,
                pattern,
                rng.normal(size=10) + 9,
            ]
        )
        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)
        seen: List[object] = []

        def bomb(event):
            raise ValueError("subscriber bug")

        runner = SupervisedRunner(monitor, [ArraySource(stream, name="s")])
        runner.subscribe(bomb)
        runner.subscribe(seen.append)  # later subscribers still fire
        report = runner.run()
        assert len(report.events) == 2
        assert len(report.dead_letters) == 2
        assert len(seen) == 2
        for letter in report.dead_letters:
            assert isinstance(letter.error, ValueError)
            assert letter.event in report.events

    def test_bounded_record_drops_oldest(self, rng):
        # Five matches, cap of 2: the record keeps the two newest
        # letters and counts the three evictions.
        pattern = rng.normal(size=4)
        chunks = [rng.normal(size=6) + 9]
        for _ in range(5):
            chunks.append(pattern)
            chunks.append(rng.normal(size=6) + 9)
        stream = np.concatenate(chunks)
        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)

        def bomb(event):
            raise ValueError("subscriber bug")

        runner = SupervisedRunner(
            monitor,
            [ArraySource(stream, name="s")],
            max_dead_letters=2,
        )
        runner.subscribe(bomb)
        report = runner.run()
        assert len(report.events) == 5
        assert len(runner.dead_letters) == 2
        assert runner.dead_letters_total == 5
        assert runner.dead_letters_dropped == 3
        assert report.dead_letters_dropped == 3
        # The retained letters are the *newest* two.
        kept = [letter.event for letter in runner.dead_letters]
        assert kept == report.events[-2:]
        # The report never claims more new letters than are retained.
        assert [letter.event for letter in report.dead_letters] == kept

    def test_dropped_letters_reach_metrics(self, rng):
        pattern = rng.normal(size=4)
        chunks = []
        for _ in range(3):
            chunks.append(rng.normal(size=6) + 9)
            chunks.append(pattern)
        chunks.append(rng.normal(size=6) + 9)
        stream = np.concatenate(chunks)
        monitor = StreamMonitor()
        monitor.add_query("q", pattern, epsilon=1e-9)

        def bomb(event):
            raise ValueError("boom")

        runner = SupervisedRunner(
            monitor,
            [ArraySource(stream, name="s")],
            max_dead_letters=1,
        )
        runner.enable_metrics()
        runner.subscribe(bomb)
        report = runner.run()
        snapshot = report.metrics
        dropped = snapshot["spring_dead_letters_dropped_total"]["series"]
        (series,) = [
            s for s in dropped if s["labels"] == {"stream": "s"}
        ]
        assert series["value"] == runner.dead_letters_dropped > 0

    def test_rejects_bad_cap(self):
        with pytest.raises(ValidationError):
            SupervisedRunner(
                StreamMonitor(),
                [ArraySource([1.0], name="s")],
                max_dead_letters=0,
            )


class TestRequestStop:
    def test_stop_mid_run_snapshots_and_resumes_identically(
        self, rng, tmp_path
    ):
        pattern = rng.normal(size=6)
        stream = _planted_stream(rng, pattern, pad=40)

        def monitor_factory():
            monitor = StreamMonitor()
            monitor.add_query("q", pattern, epsilon=1e-9)
            return monitor

        reference = SupervisedRunner(
            monitor_factory(), [ArraySource(stream, name="s")]
        )
        expected = [_key(e) for e in reference.run().events]

        manager = CheckpointManager(tmp_path)
        first = SupervisedRunner(
            monitor_factory(),
            [ArraySource(stream, name="s")],
            checkpoint=manager,
            checkpoint_every=1000,  # cadence never fires; stop must
        )
        stop_at = 43

        def trigger(watermark: int) -> None:
            if watermark >= stop_at:
                first.request_stop()

        first.on_tick = trigger
        report = first.run()
        assert report.stopped
        assert report.ticks == stop_at
        # The early-stop snapshot is at the stop tick, not a cadence
        # boundary (and not missing).
        snapshot = manager.latest()
        assert snapshot is not None
        assert int(snapshot["watermark"]) == stop_at
        assert report.checkpoints == 1

        acked = int(snapshot["events_emitted"])
        prefix = [_key(e) for e in first.events[:acked]]
        second = SupervisedRunner.resume(
            [ArraySource(stream, name="s")], manager
        )
        tail = [_key(e) for e in second.run().events]
        assert prefix + tail == expected

    def test_next_run_clears_the_flag(self, rng):
        stream = rng.normal(size=20)
        monitor = StreamMonitor()
        monitor.add_query("q", rng.normal(size=4), epsilon=1e-9)
        runner = SupervisedRunner(monitor, [ArraySource(stream, name="s")])
        runner.request_stop()
        report = runner.run()
        # The flag is cleared at run() entry, so a stop requested while
        # idle does not wedge the next run.
        assert not report.stopped
        assert report.ticks == 20


class TestResume:
    def test_kill_and_resume_is_event_identical(self, rng, tmp_path):
        pattern = rng.normal(size=6)
        stream = _planted_stream(rng, pattern, pad=40)

        def monitor_factory():
            monitor = StreamMonitor()
            monitor.add_query("q", pattern, epsilon=1e-9)
            return monitor

        reference = SupervisedRunner(
            monitor_factory(), [ArraySource(stream, name="s")]
        )
        expected = [_key(e) for e in reference.run().events]

        manager = CheckpointManager(tmp_path)
        first = SupervisedRunner(
            monitor_factory(),
            [ArraySource(stream, name="s")],
            checkpoint=manager,
            checkpoint_every=7,
        )
        first.run(max_ticks=45, flush=False)  # killed mid-stream
        snapshot = manager.latest()
        acked = int(snapshot["events_emitted"])
        prefix = [_key(e) for e in first.events[:acked]]
        second = SupervisedRunner.resume(
            [ArraySource(stream, name="s")], manager
        )
        assert second.resumed_from == snapshot["watermark"]
        tail = [_key(e) for e in second.run().events]
        assert prefix + tail == expected


class TestValidation:
    def test_rejects_non_monitor(self):
        with pytest.raises(ValidationError):
            SupervisedRunner(object(), [ArraySource([1.0], name="s")])

    def test_rejects_empty_sources(self):
        with pytest.raises(ValidationError):
            SupervisedRunner(StreamMonitor(), [])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValidationError):
            SupervisedRunner(
                StreamMonitor(),
                [ArraySource([1.0], name="s"), ArraySource([2.0], name="s")],
            )

    def test_rejects_cadence_without_manager(self):
        with pytest.raises(ValidationError):
            SupervisedRunner(
                StreamMonitor(),
                [ArraySource([1.0], name="s")],
                checkpoint_every=5,
            )
