"""Shared fixtures for the network-service conformance suite.

Every test runs against a real server: a :class:`MonitorServer` on its
own event-loop thread bound to an ephemeral localhost port, fronting
the in-process engine.  Tests that need custom engine or server knobs
use the ``service_server`` factory; the plain ``server`` fixture is
the common case (one pre-registered stream + one spike query).
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.service.engine import EngineConfig
from repro.service.server import ServerHandle, start_in_thread

SPIKE = [0.0, 5.0, 0.0]
EPSILON = 2.0


@pytest.fixture
def service_server() -> Iterator:
    """Factory: start a server with custom knobs; all stopped at teardown."""
    handles = []

    def factory(config: EngineConfig = None, **kwargs) -> ServerHandle:
        if config is None:
            config = EngineConfig(
                streams=("s1",),
                queries=[("spike", SPIKE, EPSILON, {})],
            )
        handle = start_in_thread(config, **kwargs)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop(checkpoint=False)


@pytest.fixture
def server(service_server) -> ServerHandle:
    """One running server: stream ``s1``, query ``spike`` (eps 2.0)."""
    return service_server()
