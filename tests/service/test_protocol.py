"""Wire-protocol robustness: malformed frames must never take the server down.

The contract under test (ISSUE 9): whatever bytes a client sends —
truncated lines, frames split across TCP packets, invalid JSON,
non-finite payloads, oversized batches — the server answers with a
structured ``error`` frame (or applies the missing-value policy),
keeps the connection in a defined state, and **never** wedges other
connections.  Hypothesis drives the adversarial inputs; after every
barrage a fresh well-formed session must still work end to end.

Pure-function properties of the codec itself (round-trips, canonical
bytes) live here too, since they underwrite the byte-level parity
suite.
"""

from __future__ import annotations

import json
import math
import socket

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.matches import Match
from repro.core.monitor import MatchEvent
from repro.service import protocol
from repro.service.client import ProducerClient, ServiceConnection

# ----------------------------------------------------------------------
# Codec properties (no server needed)
# ----------------------------------------------------------------------

frame_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=12), frame_values, max_size=6
    ).map(lambda d: dict(d, type="x"))
)
@settings(max_examples=50, deadline=None)
def test_encode_decode_roundtrip(frame):
    """decode(encode(frame)) == frame for any JSON-safe frame."""
    assert protocol.decode_frame(protocol.encode_frame(frame)) == frame


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=12), frame_values, max_size=6
    ).map(lambda d: dict(d, type="x"))
)
@settings(max_examples=50, deadline=None)
def test_encoding_is_canonical(frame):
    """Key order on input never changes the bytes on the wire."""
    reordered = dict(reversed(list(frame.items())))
    assert protocol.encode_frame(frame) == protocol.encode_frame(reordered)


def test_event_roundtrip_preserves_every_field():
    match = Match(
        start=3,
        end=9,
        distance=1.25,
        output_time=11,
        path=((3, 1), (4, 2), (9, 4)),
        group_start=2,
        group_end=10,
    )
    event = MatchEvent("s1", "spike", match)
    data = protocol.encode_event("s1", 7, event)
    stream, seq, decoded = protocol.decode_event(
        protocol.decode_frame(data)
    )
    assert (stream, seq) == ("s1", 7)
    assert decoded.query == "spike"
    assert decoded.match == match


def test_decode_values_accepts_numbers_strings_and_json_tokens():
    raw = json.loads('[1, 2.5, "nan", "inf", "-inf", NaN, Infinity]')
    values = protocol.decode_values(raw, max_batch=10)
    assert values[0] == 1.0 and values[1] == 2.5
    assert math.isnan(values[2]) and math.isnan(values[5])
    assert values[3] == math.inf and values[6] == math.inf
    assert values[4] == -math.inf


@pytest.mark.parametrize(
    "raw, code",
    [
        ("notalist", "bad_frame"),
        ([], "bad_frame"),
        ([1, "spam"], "bad_frame"),
        ([True], "bad_frame"),
        ([None], "bad_frame"),
        ([[1.0]], "bad_frame"),
        (list(range(11)), "oversized_batch"),
    ],
)
def test_decode_values_rejects_garbage(raw, code):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.decode_values(raw, max_batch=10)
    assert err.value.code == code


@pytest.mark.parametrize(
    "line, code",
    [
        (b"", "bad_frame"),
        (b"   \n", "bad_frame"),
        (b"{not json}\n", "bad_json"),
        (b'{"type": "push"', "bad_json"),
        (b"[1, 2, 3]\n", "bad_frame"),
        (b'"just a string"\n', "bad_frame"),
        (b"{}\n", "bad_frame"),
        (b'{"type": 7}\n', "bad_frame"),
    ],
)
def test_decode_frame_rejects_malformed_lines(line, code):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.decode_frame(line)
    assert err.value.code == code


# ----------------------------------------------------------------------
# Live-server robustness
# ----------------------------------------------------------------------


def _assert_alive(handle):
    """A fresh, fully well-formed session still works end to end."""
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    before = producer.watermark
    ack = producer.push([1.0, 1.0])
    assert ack["applied"] == 2
    assert ack["watermark"] == before + 2
    producer.bye()
    producer.close()


junk_lines = st.one_of(
    st.binary(max_size=64).filter(lambda b: b"\n" not in b),
    st.text(max_size=64).map(lambda t: t.replace("\n", " ").encode()),
    st.sampled_from(
        [
            b"{not json}",
            b'{"type": "push"',
            b'{"type": []}',
            b"[1,2,3]",
            b'{"type": "push", "seq": 1}',
            b'{"type": "push", "seq": -4, "values": [1]}',
            b'{"type": "push", "seq": 1, "values": "x"}',
            b'{"type": "push", "seq": 1, "values": []}',
            b'{"type": "frobnicate"}',
            b'{"type": "hello", "role": "producer"}',
        ]
    ),
)


@given(st.lists(junk_lines, min_size=1, max_size=6))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_junk_frames_get_error_replies_not_crashes(server, lines):
    """Arbitrary junk on a producer connection: errors, never death."""
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    for line in lines:
        producer.send_raw(line + b"\n")
    # The connection still speaks the protocol afterwards: a valid
    # push must be acked (the server never wedges mid-connection).
    producer.settimeout(30.0)
    seq = producer.send_push([1.0])
    while True:
        frame = producer.recv()
        assert frame is not None, "server closed on a recoverable error"
        if frame.get("type") == "ack" and frame.get("seq") == seq:
            assert frame["applied"] == 1
            break
        assert frame.get("type") in ("error", "pong", "ack")
    producer.close()
    _assert_alive(server)


def test_frames_split_across_tcp_packets(server):
    """One frame delivered byte-by-byte parses exactly once."""
    conn = ServiceConnection("127.0.0.1", server.port)
    hello = protocol.encode_frame(
        {"type": "hello", "role": "producer", "stream": "s1"}
    )
    for i in range(len(hello)):
        conn.sock.sendall(hello[i : i + 1])
    ack = conn.recv_type("hello_ack")
    watermark = ack["watermark"]
    push = protocol.encode_frame(
        {"type": "push", "seq": 1, "values": [1.0, 2.0, 1.0]}
    )
    mid = len(push) // 2
    conn.sock.sendall(push[:mid])
    conn.sock.sendall(push[mid:])
    ack = conn.recv_type("ack")
    assert ack["applied"] == 3
    assert ack["watermark"] == watermark + 3
    conn.close()


def test_truncated_connection_mid_frame_does_not_leak(server):
    """Dropping the socket mid-frame leaves the server fully usable."""
    raw = socket.create_connection(("127.0.0.1", server.port))
    raw.sendall(b'{"type": "hello", "role": "produ')  # cut mid-token
    raw.close()
    _assert_alive(server)


def test_non_finite_payloads_route_through_missing_policy(server):
    """NaN = missing (skipped, time passes); inf = corrupt (bad_value)."""
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    # Default matchers run missing="skip": NaN is accepted and the
    # clock advances (no error member in the ack).
    ack = producer.push([1.0, float("nan"), 1.0])
    assert "error" not in ack and ack["applied"] == 3
    # inf is corrupt for every policy: the clean prefix is applied and
    # acked, the offending tick is reported, the connection survives.
    before = ack["watermark"]
    ack = producer.push([2.0, float("inf"), 2.0])
    assert ack["applied"] == 1
    assert ack["watermark"] == before + 1
    assert ack["error"]["code"] == "bad_value"
    assert str(before + 2) in ack["error"]["detail"]
    # Still alive, same connection.
    ack = producer.push([0.5])
    assert ack["applied"] == 1
    producer.close()


def test_non_finite_json_tokens_accepted_on_the_wire(server):
    """Python-style NaN/Infinity tokens parse; semantics are the policy's."""
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    producer.send_raw(
        b'{"type": "push", "seq": 1, "values": [1.0, NaN, 1.0]}\n'
    )
    ack = producer.recv_type("ack")
    assert ack["applied"] == 3 and "error" not in ack
    producer.send_raw(
        b'{"type": "push", "seq": 2, "values": [Infinity]}\n'
    )
    ack = producer.recv_type("ack")
    assert ack["applied"] == 0 and ack["error"]["code"] == "bad_value"
    producer.close()


def test_oversized_batch_rejected_without_side_effects(service_server):
    handle = service_server(max_batch=8)
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    assert producer.max_batch == 8
    before = producer.watermark
    producer.send_push(list(np.zeros(9)))
    frame = producer.recv()
    assert frame["type"] == "error"
    assert frame["code"] == "oversized_batch"
    # Nothing was applied, and the connection still works.
    ack = producer.push(list(np.ones(8)))
    assert ack["applied"] == 8
    assert ack["watermark"] == before + 8
    producer.close()


def test_oversized_line_closes_only_that_connection(service_server):
    handle = service_server(max_line=4096)
    raw = socket.create_connection(("127.0.0.1", handle.port))
    raw.sendall(b"x" * 8192)  # no newline within the limit
    raw.settimeout(30.0)
    data = b""
    while True:
        chunk = raw.recv(4096)
        if not chunk:
            break
        data += chunk
    assert b"oversized_line" in data
    raw.close()
    _assert_alive(handle)


def test_push_before_hello_is_rejected(server):
    conn = ServiceConnection("127.0.0.1", server.port)
    conn.send({"type": "push", "seq": 1, "values": [1.0]})
    frame = conn.recv()
    assert frame["type"] == "error" and frame["code"] == "bad_hello"
    conn.close()
    _assert_alive(server)


def test_bad_role_is_rejected(server):
    conn = ServiceConnection("127.0.0.1", server.port)
    conn.send({"type": "hello", "role": "superuser"})
    frame = conn.recv()
    assert frame["type"] == "error" and frame["code"] == "bad_hello"
    conn.close()


def test_producer_without_stream_is_rejected(server):
    conn = ServiceConnection("127.0.0.1", server.port)
    conn.send({"type": "hello", "role": "producer"})
    frame = conn.recv()
    assert frame["type"] == "error" and frame["code"] == "bad_frame"
    conn.close()


def test_wedged_connection_does_not_block_others(server):
    """A connection that sent garbage and went silent stalls nobody."""
    raw = socket.create_connection(("127.0.0.1", server.port))
    raw.sendall(b'{"type": "hello", "role": "producer", "stream": "s1"}\n')
    raw.sendall(b"garbage that is not json\n")  # leave it hanging, unread
    _assert_alive(server)
    raw.close()
