"""Crash/reconnect recovery: exactly-once events past the acked watermark.

The property (ISSUE 9): SIGKILL the serving process mid-batch, restart
it from checkpoints with ``--resume``, reconnect the clients, and the
composed system delivers every match event **exactly once** — no
losses, no duplicates — when each side plays its half of the contract:

* the producer buffers pushed values and, after a reconnect, replays
  everything past the restored watermark with the ``first`` field
  (position-pinned, so replay is idempotent);
* the subscriber deduplicates by the per-stream event ``seq``, which
  is restored from the checkpoint and therefore regenerates
  *identically* for replayed ticks (the engine is deterministic).

These tests drive the real ``repro serve`` CLI in a subprocess — the
same process a deployment would run — so the kill is a genuine SIGKILL
of a live asyncio server mid-protocol, not a simulated failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.core.monitor import StreamMonitor
from repro.service import protocol
from repro.service.client import (
    ControlClient,
    ProducerClient,
    SubscriberClient,
)

SPIKE = [0.0, 5.0, 0.0]
EPSILON = 2.0
# One guaranteed spike match per repetition, ending mid-pulse.
PULSE = [1.0, 1.0, 0.1, 5.0, 0.1, 1.0, 1.0, 1.0]
REPS = 12
BATCH = 5


def _workload(reps: int = REPS) -> List[float]:
    return list(PULSE) * reps


def _oracle_frames(values: List[float]) -> Dict[int, bytes]:
    """seq -> canonical event frame bytes for a straight-through run."""
    monitor = StreamMonitor(keep_history=False)
    monitor.add_stream("s1")
    monitor.add_query("spike", SPIKE, EPSILON)
    frames: Dict[int, bytes] = {}

    def collect(event) -> None:
        seq = len(frames) + 1
        frames[seq] = protocol.encode_event("s1", seq, event)

    monitor.subscribe(collect)
    monitor.push_many("s1", values)
    return frames


def _canonical(frame: dict) -> bytes:
    """A received frame re-encoded into canonical wire bytes."""
    return protocol.encode_frame(frame)


def _spawn_server(checkpoint_dir: Path, *extra: str):
    """Start ``repro serve`` in a subprocess; return (proc, port)."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--streams",
        "s1",
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--checkpoint-every",
        "8",
        *extra,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,
    )
    deadline = time.monotonic() + 60.0
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("listening on "):
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("server did not report a listening port")
    return proc, port


def _sigkill(proc) -> None:
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    proc.stdout.close()


def _sigterm(proc) -> None:
    try:
        os.kill(proc.pid, signal.SIGTERM)
        proc.wait(timeout=30)
    except (ProcessLookupError, subprocess.TimeoutExpired):
        proc.kill()
        proc.wait(timeout=30)
    proc.stdout.close()


def test_sigkill_mid_batch_then_resume_is_exactly_once(tmp_path):
    values = _workload()
    oracle = _oracle_frames(values)
    assert len(oracle) == REPS  # workload sanity: one match per pulse

    ckpt = tmp_path / "ckpt"
    proc, port = _spawn_server(ckpt)
    crashed = False
    try:
        control = ControlClient("127.0.0.1", port)
        control.register_query("spike", SPIKE, EPSILON)
        control.close()

        sub = SubscriberClient("127.0.0.1", port, streams=["s1"])
        producer = ProducerClient("127.0.0.1", port, stream="s1")

        # Phase 1: closed-loop pushes of the first 5 pulses (40 ticks,
        # batch 5; cadence 8 puts checkpoints at watermarks 10..40).
        for lo in range(0, 40, BATCH):
            ack = producer.push(values[lo : lo + BATCH])
            assert "error" not in ack
        assert producer.watermark == 40

        # Block until all 5 acked-region events arrived, so the crash
        # below can only cost events the producer will replay.
        pre = {
            int(f["seq"]): _canonical(f) for f in sub.recv_new_events(5)
        }
        assert sorted(pre) == [1, 2, 3, 4, 5]

        # Mid-batch crash: one short frame in flight (ack never read,
        # and ticks 41-43 cannot reach the next checkpoint at 50) plus
        # a second frame cut off halfway through its bytes.
        producer.send_push(values[40:43])
        partial = protocol.encode_frame(
            {"type": "push", "seq": 999, "values": values[43:48]}
        )
        producer.send_raw(partial[: len(partial) // 2])
        _sigkill(proc)
        crashed = True
        sub.close()
        producer.close()

        # Phase 2: restart from checkpoints and finish the stream.
        proc, port = _spawn_server(ckpt, "--resume")
        crashed = False

        producer = ProducerClient("127.0.0.1", port, stream="s1")
        restored = producer.watermark
        # The newest durable checkpoint is at watermark 40: the acked
        # prefix survives, the un-acked in-flight ticks do not.
        assert restored == 40

        # The resumed engine restored the query registry from the
        # checkpoint — no re-registration step.
        control = ControlClient("127.0.0.1", port)
        assert control.stats()["queries"] == ["spike"]
        control.close()

        sub = SubscriberClient("127.0.0.1", port, streams=["s1"])
        # Carry the consumer's own high-water mark across the crash:
        # after a deeper crash the server's restored seq can be behind
        # what this client already saw.
        sub.seen["s1"] = max(sub.seen.get("s1", 0), max(pre))

        # Producer replay: everything past the restored watermark,
        # position-pinned with `first` so replay is idempotent.
        for lo in range(restored, len(values), BATCH):
            chunk = values[lo : lo + BATCH]
            ack = producer.push(chunk, first=lo + 1)
            assert "error" not in ack
            assert ack["trimmed"] == 0
            assert ack["watermark"] == lo + len(chunk)
        producer.bye()
        producer.close()

        fresh = sub.recv_new_events(len(oracle) - len(pre))
        sub.close()

        combined: Dict[int, bytes] = dict(pre)
        for frame in fresh:
            seq = int(frame["seq"])
            assert seq not in combined, "duplicate delivered past dedup"
            combined[seq] = _canonical(frame)

        # Exactly-once, byte-exact: the union of pre-crash and
        # post-resume deliveries is precisely the oracle sequence.
        assert sorted(combined) == sorted(oracle)
        for seq, line in oracle.items():
            assert combined[seq] == line, f"event {seq} diverged"
    finally:
        if not crashed:
            _sigterm(proc)


def test_replayed_events_are_byte_identical_duplicates(tmp_path):
    """Re-pushed ticks regenerate the *same* events: same seq, same bytes.

    This is what makes seq-based dedup sound — a consumer that drops a
    replayed seq is provably not dropping new information.
    """
    values = _workload(reps=4)  # 32 ticks, events at ticks 8/16/24/32
    ckpt = tmp_path / "ckpt"
    proc, port = _spawn_server(ckpt, "--checkpoint-every", "16")
    crashed = False
    try:
        control = ControlClient("127.0.0.1", port)
        control.register_query("spike", SPIKE, EPSILON)
        control.close()
        sub = SubscriberClient("127.0.0.1", port, streams=["s1"])
        producer = ProducerClient("127.0.0.1", port, stream="s1")
        # Three acked batches of 8; cadence 16 leaves the only durable
        # checkpoint at watermark 16, so ticks 17-24 will be replayed.
        for lo in range(0, 24, 8):
            ack = producer.push(values[lo : lo + 8])
            assert "error" not in ack
        pre = {
            int(f["seq"]): _canonical(f) for f in sub.recv_new_events(3)
        }
        _sigkill(proc)
        crashed = True
        sub.close()
        producer.close()

        proc, port = _spawn_server(ckpt, "--resume", "--checkpoint-every", "16")
        crashed = False
        producer = ProducerClient("127.0.0.1", port, stream="s1")
        assert producer.watermark == 16
        sub = SubscriberClient("127.0.0.1", port, streams=["s1"])
        # The restored seq is 2: event 3 (tick 24) is past the
        # checkpoint and will be regenerated by the replay below.
        assert sub.seen.get("s1") == 2
        for lo in range(16, len(values), 8):
            producer.push(values[lo : lo + 8], first=lo + 1)
        producer.close()
        frames = sub.recv_new_events(2)  # regenerated 3 + fresh 4
        sub.close()
        assert [int(f["seq"]) for f in frames] == [3, 4]
        assert _canonical(frames[0]) == pre[3]
    finally:
        if not crashed:
            _sigterm(proc)


def test_restart_without_resume_starts_clean(tmp_path):
    """Omitting --resume ignores checkpoints: watermark starts at zero."""
    ckpt = tmp_path / "ckpt"
    proc, port = _spawn_server(ckpt)
    try:
        producer = ProducerClient("127.0.0.1", port, stream="s1")
        producer.push([1.0] * 16)  # two checkpoint intervals
        producer.close()
    finally:
        _sigkill(proc)
    proc, port = _spawn_server(ckpt)
    try:
        producer = ProducerClient("127.0.0.1", port, stream="s1")
        assert producer.watermark == 0
        producer.close()
    finally:
        _sigterm(proc)
