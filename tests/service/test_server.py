"""Server conformance: lifecycle, fan-out, backpressure, exposition.

What the line protocol promises beyond not-crashing (see
``docs/algorithm.md`` §15):

* producers get one in-order ``ack`` per push, carrying the stream
  watermark and remaining credit;
* a producer overrunning its credit window is disconnected with
  ``credit_exceeded``, and the ``service_inflight_peak_ticks`` gauge —
  asserted through the metrics registry, not the server's privates —
  never exceeds the window;
* subscribers receive events in emission order, filtered per
  subscription, and a subscriber that stops reading is evicted without
  delaying its peers;
* the query lifecycle (register/remove/swap) works live, between
  pushes, on a control connection;
* ``GET /metrics`` serves parseable Prometheus text exposition over
  the same port.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.obs.prometheus import parse as parse_prometheus
from repro.service.client import (
    ControlClient,
    ProducerClient,
    ServiceConnection,
    SubscriberClient,
)
from repro.service.engine import EngineConfig

SPIKE = [0.0, 5.0, 0.0]
#: One spike embedded in calm samples: exactly one match per repetition.
PULSE = [1.0, 1.0, 0.1, 5.0, 0.1, 1.0, 1.0, 1.0]


def _http_get(port: int, path: str) -> tuple:
    raw = socket.create_connection(("127.0.0.1", port), timeout=30)
    raw.sendall(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    data = b""
    while True:
        chunk = raw.recv(65536)
        if not chunk:
            break
        data += chunk
    raw.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, head, body


# ----------------------------------------------------------------------
# Producer lifecycle
# ----------------------------------------------------------------------


def test_acks_are_in_order_and_watermark_monotone(server):
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    seqs = [producer.send_push([1.0] * (i + 1)) for i in range(5)]
    total = 0
    for expected_seq, n in zip(seqs, range(1, 6)):
        ack = producer.recv_ack()
        total += n
        assert ack["seq"] == expected_seq
        assert ack["watermark"] == total
    producer.close()


def test_reconnect_resumes_at_watermark(server):
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    producer.push([1.0, 2.0, 3.0])
    producer.close()
    again = ProducerClient("127.0.0.1", server.port, stream="s1")
    assert again.watermark == 3
    again.close()


def test_replay_prefix_is_trimmed_idempotently(server):
    """Re-pushing acked ticks with ``first`` applies nothing twice."""
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    producer.push([1.0, 2.0, 3.0, 4.0])
    # Replay ticks 2..6: 2,3,4 are already applied, 5,6 are new.
    ack = producer.push([2.0, 3.0, 4.0, 9.0, 9.0], first=2)
    assert ack["trimmed"] == 3
    assert ack["applied"] == 2
    assert ack["watermark"] == 6
    # Full duplicate: nothing applied.
    ack = producer.push([9.0, 9.0], first=5)
    assert ack["trimmed"] == 2 and ack["applied"] == 0
    assert ack["watermark"] == 6
    producer.close()


def test_gap_in_replay_is_rejected(server):
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    producer.push([1.0, 2.0])
    producer.send_push([9.0], first=9)  # ticks 3..8 missing
    frame = producer.recv()
    assert frame["type"] == "error" and frame["code"] == "gap"
    assert frame["watermark"] == 2
    # Recoverable: the correct continuation works on the same socket.
    ack = producer.push([3.0], first=3)
    assert ack["applied"] == 1 and ack["watermark"] == 3
    producer.close()


def test_streams_auto_register_in_process(server):
    producer = ProducerClient("127.0.0.1", server.port, stream="fresh")
    assert producer.watermark == 0
    ack = producer.push(PULSE)
    assert ack["applied"] == len(PULSE)
    producer.close()


# ----------------------------------------------------------------------
# Credit-window backpressure
# ----------------------------------------------------------------------


def test_credit_overrun_disconnects_with_error(service_server):
    """A push the window can never cover is a fatal protocol violation.

    (Credit bounds *unacked* ticks, so a pipelined overrun only trips
    when acks actually lag; a single frame larger than the whole
    window is deterministically over budget.)
    """
    handle = service_server(credit_window=10)
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    assert producer.credit == 10
    producer.send_push([1.0] * 11)
    producer.settimeout(30.0)
    frames = []
    while True:
        frame = producer.recv()
        if frame is None:
            break
        frames.append(frame)
    codes = [f.get("code") for f in frames if f.get("type") == "error"]
    assert "credit_exceeded" in codes
    # Nothing from the over-budget frame was applied.
    assert not any(f.get("type") == "ack" for f in frames)
    producer.close()
    again = ProducerClient("127.0.0.1", handle.port, stream="s1")
    assert again.watermark == 0
    again.close()


def test_inflight_peak_never_exceeds_credit_window(service_server):
    """Backpressure bound, asserted through the metrics registry."""
    window = 16
    handle = service_server(credit_window=window)
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    # Closed-loop within credit: pipeline 4-tick batches, reading acks
    # only when the window would otherwise overflow.
    inflight, pending = 0, 0
    for _ in range(40):
        while inflight + 4 > window:
            producer.recv_ack()
            inflight -= 4
            pending -= 1
        producer.send_push([1.0, 2.0, 1.0, 0.5])
        inflight += 4
        pending += 1
    for _ in range(pending):
        producer.recv_ack()
    producer.close()
    snapshot = handle.metrics.registry.snapshot()
    series = snapshot["service_inflight_peak_ticks"]["series"]
    peaks = {s["labels"]["stream"]: s["value"] for s in series}
    assert 0 < peaks["s1"] <= window


# ----------------------------------------------------------------------
# Subscribers: fan-out, filtering, eviction
# ----------------------------------------------------------------------


def test_events_fan_out_to_all_matching_subscribers(server):
    all_events = SubscriberClient("127.0.0.1", server.port)
    only_s1 = SubscriberClient("127.0.0.1", server.port, streams=["s1"])
    only_s2 = SubscriberClient("127.0.0.1", server.port, streams=["s2"])
    wrong_query = SubscriberClient(
        "127.0.0.1", server.port, queries=["no-such-query"]
    )
    p1 = ProducerClient("127.0.0.1", server.port, stream="s1")
    p2 = ProducerClient("127.0.0.1", server.port, stream="s2")
    p1.push(PULSE)
    p2.push(PULSE)
    got_all = all_events.recv_new_events(2)
    assert {e["stream"] for e in got_all} == {"s1", "s2"}
    assert [e["stream"] for e in only_s1.recv_new_events(1)] == ["s1"]
    assert [e["stream"] for e in only_s2.recv_new_events(1)] == ["s2"]
    # The filtered-out subscriber saw nothing.
    wrong_query.settimeout(0.5)
    with pytest.raises(socket.timeout):
        wrong_query.recv_event()
    for c in (all_events, only_s1, only_s2, wrong_query, p1, p2):
        c.close()


def test_event_order_matches_emission_order(server):
    sub = SubscriberClient("127.0.0.1", server.port)
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    for _ in range(5):
        producer.push(PULSE)
    events = sub.recv_new_events(5)
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) == list(range(1, 6))
    outputs = [e["match"]["output_time"] for e in events]
    assert outputs == sorted(outputs)
    producer.close()
    sub.close()


def test_slow_subscriber_evicted_without_delaying_others(service_server):
    """A stalled subscriber is evicted; a draining one sees everything.

    The per-subscriber queue absorbs the fan-out burst of one push
    batch (fan-out callbacks land on the loop back-to-back, so the
    writer task cannot drain mid-burst) — hence the queue depth here is
    comfortably above the per-push event count, and the *slow* reader
    is one that never reads at all.
    """
    handle = service_server(subscriber_queue=64)
    # The slow subscriber is a raw socket with a tiny receive window
    # that subscribes and then never reads a byte.
    slow = socket.socket()
    slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    slow.connect(("127.0.0.1", handle.port))
    slow.sendall(b'{"type": "hello", "role": "subscriber"}\n')
    fast = SubscriberClient("127.0.0.1", handle.port)
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    emitted = 0
    fast.settimeout(120.0)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        producer.push(PULSE * 16)  # 16 matches per push
        emitted += 16
        fast.recv_new_events(16)
        snapshot = handle.metrics.registry.snapshot()
        evictions = snapshot["service_subscriber_evictions_total"]["series"]
        if evictions and evictions[0]["value"] >= 1:
            break
    else:
        pytest.fail("slow subscriber was never evicted")
    # Only the slow subscriber was evicted, and the fast one keeps
    # receiving fresh events promptly.
    producer.push(PULSE)
    emitted += 1
    events = fast.recv_new_events(1)
    assert events[0]["seq"] == emitted
    snapshot = handle.metrics.registry.snapshot()
    evictions = snapshot["service_subscriber_evictions_total"]["series"]
    assert evictions[0]["value"] == 1.0
    # And the evicted socket is actually closed by the server.
    slow.settimeout(60.0)
    saw_eof = False
    try:
        while True:
            if not slow.recv(1 << 20):
                saw_eof = True
                break
    except OSError:
        saw_eof = True
    assert saw_eof
    slow.close()
    for c in (fast, producer):
        c.close()


# ----------------------------------------------------------------------
# Control: live query lifecycle over the wire
# ----------------------------------------------------------------------


def test_register_remove_swap_live(server):
    control = ControlClient("127.0.0.1", server.port)
    sub = SubscriberClient("127.0.0.1", server.port)
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")

    reply = control.register_query("dip", [5.0, 0.0, 5.0], 2.0)
    assert sorted(reply["queries"]) == ["dip", "spike"]
    # 5.0, 0.2, 5.0 is a dip; 1.0, 5.0, 0.2 also reads as a spike —
    # both queries fire on this pulse, proving the live registration
    # took effect mid-stream.
    producer.push([1.0, 5.0, 0.2, 5.0, 1.0, 1.0, 1.0])
    events = sub.recv_new_events(2)
    assert {e["query"] for e in events} == {"dip", "spike"}

    # Swap the spike template for a higher pulse; the old template
    # stops matching and the new one starts fresh after the watermark.
    reply = control.swap_query("spike", [0.0, 9.0, 0.0], 2.0)
    assert sorted(reply["queries"]) == ["dip", "spike"]
    producer.push([1.0, 1.0, 0.3, 9.0, 0.3, 1.0, 1.0, 1.0])
    events = sub.recv_new_events(1)
    assert events[0]["query"] == "spike"

    reply = control.remove_query("dip")
    assert reply["queries"] == ["spike"]
    stats = control.stats()
    assert stats["queries"] == ["spike"]

    with pytest.raises(ServiceError, match="bad_query"):
        control.remove_query("dip")  # already gone
    with pytest.raises(ServiceError, match="bad_query"):
        control.register_query("spike", [1.0], 1.0)  # duplicate name
    with pytest.raises(ServiceError, match="bad_query"):
        control.register_query("eps", [1.0, 2.0], -1.0)  # bad epsilon

    for c in (control, sub, producer):
        c.close()


def test_stats_report_watermarks_and_sequences(server):
    control = ControlClient("127.0.0.1", server.port)
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    producer.push(PULSE)
    stats = control.stats()
    assert stats["mode"] == "in-process"
    assert stats["streams"]["s1"]["watermark"] == len(PULSE)
    assert stats["streams"]["s1"]["seq"] == 1
    assert stats["events_total"] == 1
    control.close()
    producer.close()


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------


def test_metrics_endpoint_serves_parseable_exposition(server):
    producer = ProducerClient("127.0.0.1", server.port, stream="s1")
    sub = SubscriberClient("127.0.0.1", server.port)
    producer.push(PULSE)
    sub.recv_new_events(1)
    status, head, body = _http_get(server.port, "/metrics")
    assert status == 200
    assert b"text/plain; version=0.0.4" in head
    families = parse_prometheus(body.decode("utf-8"))
    # Service families and the fronted monitor's families co-exist in
    # one exposition.
    assert "service_pushed_ticks_total" in families
    assert "service_connections_total" in families
    assert any(name.startswith("spring_") for name in families)
    pushed = {
        tuple(sorted(labels.items())): value
        for _, labels, value in families["service_pushed_ticks_total"]
    }
    assert pushed[(("stream", "s1"),)] == float(len(PULSE))
    delivered = families["service_events_delivered_total"]
    assert delivered[0][2] >= 1.0
    producer.close()
    sub.close()


def test_http_404_405_and_healthz(server):
    status, _, body = _http_get(server.port, "/healthz")
    assert status == 200 and body == b"ok\n"
    status, _, _ = _http_get(server.port, "/nope")
    assert status == 404
    raw = socket.create_connection(("127.0.0.1", server.port), timeout=30)
    raw.sendall(b"POST /metrics HTTP/1.0\r\n\r\n")
    data = raw.recv(65536)
    assert b"405" in data.split(b"\r\n", 1)[0]
    raw.close()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


def test_stop_is_idempotent_and_rejects_new_work(service_server):
    handle = service_server()
    producer = ProducerClient("127.0.0.1", handle.port, stream="s1")
    producer.push([1.0])
    port = handle.port
    handle.stop(checkpoint=False)
    handle.stop(checkpoint=False)  # second stop is a no-op
    with pytest.raises(OSError):
        ServiceConnection("127.0.0.1", port, timeout=2.0)
    producer.close()
