"""Unit tests for the ring buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.streams import RingBuffer


class TestRingBuffer:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            RingBuffer(0)

    def test_fill_and_len(self):
        buf = RingBuffer(5)
        assert len(buf) == 0
        for value in range(3):
            buf.push(float(value))
        assert len(buf) == 3
        for value in range(10):
            buf.push(float(value))
        assert len(buf) == 5

    def test_latest_order(self):
        buf = RingBuffer(4)
        for value in range(10):
            buf.push(float(value))
        np.testing.assert_allclose(buf.latest(3), [7.0, 8.0, 9.0])

    def test_window_by_absolute_ticks(self):
        buf = RingBuffer(6)
        for value in range(1, 11):  # tick t holds value t
            buf.push(float(value))
        np.testing.assert_allclose(buf.window(6, 8), [6.0, 7.0, 8.0])

    def test_window_matches_spring_coordinates(self, rng):
        """The motivating use: slice the stream by a Match's positions."""
        from repro.core import Spring

        y = rng.normal(size=4)
        x = np.concatenate([rng.normal(size=20) + 9, y, rng.normal(size=5) + 9])
        buf = RingBuffer(16)
        spring = Spring(y, epsilon=1e-9)
        match = None
        for value in x:
            buf.push(float(value))
            match = spring.step(value) or match
        match = match or spring.flush()
        assert match is not None
        np.testing.assert_allclose(buf.window(match.start, match.end), y)

    def test_evicted_window_raises(self):
        buf = RingBuffer(3)
        for value in range(10):
            buf.push(float(value))
        with pytest.raises(ValidationError):
            buf.window(1, 2)

    def test_future_window_raises(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        with pytest.raises(ValidationError):
            buf.window(1, 5)

    def test_invalid_window_raises(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        with pytest.raises(ValidationError):
            buf.window(2, 1)

    def test_oldest_tick(self):
        buf = RingBuffer(4)
        with pytest.raises(ValidationError):
            buf.oldest_tick
        for value in range(10):
            buf.push(float(value))
        assert buf.oldest_tick == 7
        assert buf.total_pushed == 10


# ----------------------------------------------------------------------
# SharedRingBuffer
# ----------------------------------------------------------------------

from repro.streams import SharedRingBuffer  # noqa: E402


def _reader_child(descriptor, reader, expect, out):
    """Spawn target: consume ``expect`` values, send them back."""
    ring = SharedRingBuffer.attach(descriptor)
    try:
        got = []
        while len(got) < expect:
            _, values = ring.read_new(reader)
            got.extend(values.tolist())
        out.put((reader, got))
    finally:
        ring.close()


class TestSharedRingBuffer:
    def test_rejects_bad_config(self):
        with pytest.raises(ValidationError):
            SharedRingBuffer(0)
        with pytest.raises(ValidationError):
            SharedRingBuffer(4, max_readers=0)

    def test_push_read_round_trip(self):
        ring = SharedRingBuffer(8, max_readers=2)
        try:
            assert ring.push_many(np.arange(5.0)) == 5
            first, values = ring.read_new(0)
            assert first == 1
            np.testing.assert_array_equal(values, np.arange(5.0))
            # Reader 1 has its own cursor.
            first, values = ring.read_new(1)
            assert first == 1 and values.shape[0] == 5
            # Nothing new for reader 0 now.
            _, empty = ring.read_new(0)
            assert empty.shape[0] == 0
        finally:
            ring.close()
            ring.unlink()

    def test_backpressure_respects_listed_readers_only(self):
        ring = SharedRingBuffer(4, max_readers=2)
        try:
            assert ring.push_many(np.arange(4.0), readers=[0, 1]) == 4
            # Both cursors at 0: the ring is full for them.
            assert ring.push_many(np.arange(2.0), readers=[0, 1]) == 0
            ring.read_new(0)
            # Reader 1 still pins the window...
            assert ring.push_many(np.arange(2.0), readers=[0, 1]) == 0
            # ...unless the writer declares it dead.
            assert ring.push_many(np.arange(2.0), readers=[0]) == 2
        finally:
            ring.close()
            ring.unlink()

    def test_unlisted_readers_get_overwritten(self):
        ring = SharedRingBuffer(3, max_readers=1)
        try:
            ring.push_many(np.arange(10.0))  # no readers listed: wraps
            assert ring.write_seq == 3  # only capacity fits per call
            ring.push_many(np.arange(3.0, 10.0))
            assert ring.write_seq == 6
        finally:
            ring.close()
            ring.unlink()

    def test_read_limit_and_cursor_reposition(self):
        ring = SharedRingBuffer(8, max_readers=1)
        try:
            ring.push_many(np.arange(6.0))
            first, values = ring.read_new(0, limit=2)
            assert first == 1 and values.tolist() == [0.0, 1.0]
            ring.set_reader_seq(0, 5)
            first, values = ring.read_new(0)
            assert first == 6 and values.tolist() == [5.0]
            with pytest.raises(ValidationError):
                ring.set_reader_seq(0, 99)  # beyond write_seq
            with pytest.raises(ValidationError):
                ring.read_new(5)  # reader id out of range
        finally:
            ring.close()
            ring.unlink()

    def test_descriptor_attach_same_process(self):
        ring = SharedRingBuffer(8, max_readers=1)
        view = None
        try:
            ring.push_many(np.asarray([7.0, 8.0]))
            view = SharedRingBuffer.attach(ring.descriptor)
            first, values = view.read_new(0)
            assert first == 1 and values.tolist() == [7.0, 8.0]
            # The cursor lives in shared memory: the owner sees it move.
            assert ring.reader_seq(0) == 2
        finally:
            if view is not None:
                view.close()
            ring.close()
            ring.unlink()

    def test_cross_process_reader(self):
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        ring = SharedRingBuffer(64, max_readers=1)
        try:
            out = ctx.Queue()
            child = ctx.Process(
                target=_reader_child, args=(ring.descriptor, 0, 10, out)
            )
            child.start()
            try:
                for chunk in (np.arange(4.0), np.arange(4.0, 10.0)):
                    pushed = 0
                    while pushed < chunk.shape[0]:
                        pushed += ring.push_many(chunk[pushed:], readers=[0])
                _, got = out.get(timeout=60)
                assert got == [float(v) for v in range(10)]
            finally:
                child.join(timeout=60)
                assert child.exitcode == 0
        finally:
            ring.close()
            ring.unlink()
