"""Unit tests for the ring buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.streams import RingBuffer


class TestRingBuffer:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            RingBuffer(0)

    def test_fill_and_len(self):
        buf = RingBuffer(5)
        assert len(buf) == 0
        for value in range(3):
            buf.push(float(value))
        assert len(buf) == 3
        for value in range(10):
            buf.push(float(value))
        assert len(buf) == 5

    def test_latest_order(self):
        buf = RingBuffer(4)
        for value in range(10):
            buf.push(float(value))
        np.testing.assert_allclose(buf.latest(3), [7.0, 8.0, 9.0])

    def test_window_by_absolute_ticks(self):
        buf = RingBuffer(6)
        for value in range(1, 11):  # tick t holds value t
            buf.push(float(value))
        np.testing.assert_allclose(buf.window(6, 8), [6.0, 7.0, 8.0])

    def test_window_matches_spring_coordinates(self, rng):
        """The motivating use: slice the stream by a Match's positions."""
        from repro.core import Spring

        y = rng.normal(size=4)
        x = np.concatenate([rng.normal(size=20) + 9, y, rng.normal(size=5) + 9])
        buf = RingBuffer(16)
        spring = Spring(y, epsilon=1e-9)
        match = None
        for value in x:
            buf.push(float(value))
            match = spring.step(value) or match
        match = match or spring.flush()
        assert match is not None
        np.testing.assert_allclose(buf.window(match.start, match.end), y)

    def test_evicted_window_raises(self):
        buf = RingBuffer(3)
        for value in range(10):
            buf.push(float(value))
        with pytest.raises(ValidationError):
            buf.window(1, 2)

    def test_future_window_raises(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        with pytest.raises(ValidationError):
            buf.window(1, 5)

    def test_invalid_window_raises(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        with pytest.raises(ValidationError):
            buf.window(2, 1)

    def test_oldest_tick(self):
        buf = RingBuffer(4)
        with pytest.raises(ValidationError):
            buf.oldest_tick
        for value in range(10):
            buf.push(float(value))
        assert buf.oldest_tick == 7
        assert buf.total_pushed == 10
