"""Unit tests for the deterministic fault injectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TransientStreamError, ValidationError
from repro.streams import (
    ArraySource,
    CorruptSource,
    DropSource,
    DuplicateSource,
    FlakySource,
    StallSource,
)

VALUES = [float(v) for v in range(50)]


def _drain_flaky(source):
    """Pull every tick, retrying through injected transient errors."""
    out, errors = [], 0
    iterator = iter(source)
    while True:
        try:
            out.append(next(iterator))
        except StopIteration:
            return out, errors
        except TransientStreamError:
            errors += 1


class TestFlakySource:
    def test_no_tick_lost(self):
        source = FlakySource(ArraySource(VALUES), rate=0.4, seed=3)
        out, errors = _drain_flaky(source)
        assert out == VALUES  # every tick survives, in order
        assert errors > 0
        assert source.injected == errors

    def test_deterministic_replay(self):
        a = FlakySource(ArraySource(VALUES), rate=0.3, seed=9)
        first = _drain_flaky(a)
        second = _drain_flaky(a)  # replayable inner -> identical schedule
        assert first == second

    def test_max_consecutive_bounds_streaks(self):
        source = FlakySource(
            ArraySource(VALUES), rate=0.99, seed=0, max_consecutive=2
        )
        iterator = iter(source)
        for _ in VALUES:
            streak = 0
            while True:
                try:
                    next(iterator)
                    break
                except TransientStreamError:
                    streak += 1
            assert streak <= 2

    def test_zero_rate_is_transparent(self):
        source = FlakySource(ArraySource(VALUES), rate=0.0, seed=1)
        assert list(source) == VALUES

    def test_exhaustion_is_not_a_fault(self):
        source = FlakySource(ArraySource([1.0]), rate=0.0, seed=0)
        iterator = iter(source)
        assert next(iterator) == 1.0
        with pytest.raises(StopIteration):
            next(iterator)

    def test_custom_error_type(self):
        source = FlakySource(
            ArraySource(VALUES), rate=1.0, seed=0,
            max_consecutive=1, error=ConnectionError,
        )
        with pytest.raises(ConnectionError):
            next(iter(source))


class TestDropSource:
    def test_drops_subset_in_order(self):
        source = DropSource(ArraySource(VALUES), rate=0.3, seed=4)
        out = list(source)
        assert 0 < len(out) < len(VALUES)
        assert source.injected == len(VALUES) - len(out)
        # Survivors keep stream order.
        assert out == [v for v in VALUES if v in set(out)]

    def test_deterministic(self):
        source = DropSource(ArraySource(VALUES), rate=0.5, seed=11)
        assert list(source) == list(source)


class TestDuplicateSource:
    def test_duplicates_adjacent(self):
        source = DuplicateSource(ArraySource(VALUES), rate=0.3, seed=5)
        out = list(source)
        assert len(out) == len(VALUES) + source.injected
        assert source.injected > 0
        deduped = [v for i, v in enumerate(out) if i == 0 or v != out[i - 1]]
        assert deduped == VALUES


class TestCorruptSource:
    def test_corrupts_to_nan(self):
        source = CorruptSource(ArraySource(VALUES), rate=0.3, seed=6)
        out = list(source)
        assert len(out) == len(VALUES)
        nan_count = sum(1 for v in out if np.isnan(v))
        assert nan_count == source.injected > 0
        clean = [v for v in out if not np.isnan(v)]
        assert clean == [v for v in VALUES if v in set(clean)]

    def test_vector_rows_fully_nan(self):
        rows = np.arange(20.0).reshape(10, 2)
        source = CorruptSource(ArraySource(rows), rate=1.0, seed=0)
        for row in source:
            assert np.isnan(row).all()


class TestStallSource:
    def test_data_unchanged_and_sleeps_recorded(self):
        sleeps = []
        source = StallSource(
            ArraySource(VALUES), rate=0.3, seed=7, delay=0.25,
            sleep=sleeps.append,
        )
        assert list(source) == VALUES
        assert len(sleeps) == source.injected > 0
        assert all(s == 0.25 for s in sleeps)


class TestValidation:
    def test_rejects_non_source(self):
        with pytest.raises(ValidationError):
            DropSource([1.0, 2.0], rate=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValidationError):
            DropSource(ArraySource(VALUES), rate=1.5)

    def test_rejects_bad_max_consecutive(self):
        with pytest.raises(ValidationError):
            FlakySource(ArraySource(VALUES), max_consecutive=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValidationError):
            StallSource(ArraySource(VALUES), delay=-1.0)

    def test_composable_and_named(self):
        inner = ArraySource(VALUES, name="sensor")
        wrapped = DropSource(DuplicateSource(inner, rate=0.2, seed=1), rate=0.2, seed=2)
        assert wrapped.name == "sensor"
        assert list(wrapped)  # composition iterates fine
