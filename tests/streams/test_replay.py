"""Unit tests for the timestamped replay subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamMonitor
from repro.exceptions import ValidationError
from repro.streams.replay import ReplaySchedule, SimulationClock, TimedSample


class TestSchedule:
    def test_events_sorted_by_time(self, rng):
        schedule = ReplaySchedule(seed=1)
        schedule.add_source("a", rng.normal(size=10), interval=1.0)
        schedule.add_source("b", rng.normal(size=10), interval=0.7, start=0.3)
        events = schedule.events()
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        assert len(events) == 20

    def test_per_source_order_preserved_under_jitter(self, rng):
        schedule = ReplaySchedule(seed=2)
        values = np.arange(50, dtype=float)
        schedule.add_source("s", values, interval=1.0, jitter=0.4)
        replayed = [e.value for e in schedule.events() if e.source == "s"]
        assert replayed == list(values)

    def test_rejects_excess_jitter(self):
        schedule = ReplaySchedule()
        with pytest.raises(ValidationError):
            schedule.add_source("s", [1.0], interval=1.0, jitter=0.6)

    def test_rejects_duplicate_source(self):
        schedule = ReplaySchedule()
        schedule.add_source("s", [1.0])
        with pytest.raises(ValidationError):
            schedule.add_source("s", [2.0])

    def test_rejects_empty_values(self):
        with pytest.raises(ValidationError):
            ReplaySchedule().add_source("s", [])

    def test_no_sources_raises(self):
        with pytest.raises(ValidationError):
            ReplaySchedule().events()

    def test_duration(self):
        schedule = ReplaySchedule()
        schedule.add_source("s", [1.0, 2.0, 3.0], interval=2.0)
        assert schedule.duration == pytest.approx(4.0)

    def test_different_rates_interleave(self):
        schedule = ReplaySchedule()
        schedule.add_source("slow", [1.0, 2.0], interval=10.0)
        schedule.add_source("fast", [1.0] * 5, interval=1.0)
        sources = [e.source for e in schedule.events()[:6]]
        # The five fast samples (t=0..4) and slow's first (t=0) all
        # precede slow's second at t=10.
        assert sources.count("fast") == 5


class TestSimulationClock:
    def test_unpaced_runs_immediately(self, rng):
        schedule = ReplaySchedule()
        schedule.add_source("s", rng.normal(size=100), interval=100.0)
        clock = SimulationClock()  # no pacing
        events = list(clock.run(schedule))
        assert len(events) == 100

    def test_paced_respects_speedup(self):
        import time

        schedule = ReplaySchedule()
        schedule.add_source("s", [1.0, 2.0, 3.0], interval=0.05)
        clock = SimulationClock(speedup=1.0)
        begin = time.perf_counter()
        list(clock.run(schedule))
        elapsed = time.perf_counter() - begin
        assert elapsed >= 0.09  # ~2 intervals of real time

    def test_rejects_bad_speedup(self):
        with pytest.raises(ValidationError):
            SimulationClock(speedup=0.0)

    def test_drive_monitor_end_to_end(self, rng):
        pattern = rng.normal(size=5)
        stream = np.concatenate(
            [rng.normal(size=25) + 9, pattern, rng.normal(size=25) + 9]
        )
        schedule = ReplaySchedule(seed=3)
        schedule.add_source("sensor", stream, interval=1.0, jitter=0.2)
        monitor = StreamMonitor()
        monitor.add_query("p", pattern, epsilon=1e-9)
        clock = SimulationClock()
        produced = clock.drive(schedule, monitor)
        assert produced == 1
        assert monitor.streams == ["sensor"]
