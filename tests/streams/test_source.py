"""Unit tests for stream sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    MalformedRecordError,
    StreamExhaustedError,
    ValidationError,
)
from repro.streams import ArraySource, CsvSource, GeneratorSource, interleave


class TestArraySource:
    def test_scalar_iteration(self):
        source = ArraySource([1.0, 2.0, 3.0])
        assert list(source) == [1.0, 2.0, 3.0]
        assert len(source) == 3

    def test_vector_iteration(self):
        source = ArraySource(np.arange(6.0).reshape(3, 2))
        rows = list(source)
        assert len(rows) == 3
        np.testing.assert_allclose(rows[1], [2.0, 3.0])

    def test_replayable(self):
        source = ArraySource([1.0, 2.0])
        assert list(source) == list(source)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            ArraySource(np.zeros((2, 2, 2)))

    def test_take(self):
        source = ArraySource([1.0, 2.0, 3.0])
        assert source.take(2) == [1.0, 2.0]
        assert source.take(99) == [1.0, 2.0, 3.0]


class TestGeneratorSource:
    def test_single_consumption(self):
        source = GeneratorSource(iter([1.0, 2.0]))
        assert list(source) == [1.0, 2.0]
        with pytest.raises(StreamExhaustedError):
            iter(source)

    def test_infinite_generator_with_take(self):
        def forever():
            t = 0
            while True:
                yield float(t)
                t += 1

        source = GeneratorSource(forever())
        assert source.take(4) == [0.0, 1.0, 2.0, 3.0]

    def test_take_leaves_rest_consumable(self):
        source = GeneratorSource(iter([1.0, 2.0, 3.0, 4.0]))
        assert source.take(2) == [1.0, 2.0]
        assert list(source) == [3.0, 4.0]  # take must not destroy the rest

    def test_repeated_takes_continue(self):
        source = GeneratorSource(iter(range(6)))
        assert source.take(2) == [0, 1]
        assert source.take(3) == [2, 3, 4]
        assert source.take(99) == [5]

    def test_take_past_end_exhausts(self):
        source = GeneratorSource(iter([1.0]))
        assert source.take(5) == [1.0]
        with pytest.raises(StreamExhaustedError):
            source.take(1)
        with pytest.raises(StreamExhaustedError):
            iter(source)


class TestCsvSource:
    def test_reads_column(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n1,10.5\n2,11.5\n3,\n4,12.5\n")
        source = CsvSource(path, columns=1)
        values = list(source)
        assert values[0] == 10.5
        assert np.isnan(values[2])  # empty cell -> NaN
        assert values[3] == 12.5

    def test_no_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0\n2.0\n")
        assert list(CsvSource(path, skip_header=False)) == [1.0, 2.0]

    def test_vector_columns(self, tmp_path):
        path = tmp_path / "vec.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        rows = list(CsvSource(path, columns=[0, 1]))
        np.testing.assert_allclose(rows[0], [1.0, 2.0])

    def test_unparseable_becomes_nan(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("v\nx\n1.5\n")
        values = list(CsvSource(path))
        assert np.isnan(values[0]) and values[1] == 1.5

    def test_missing_column_becomes_nan(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1\n2,3\n")
        values = list(CsvSource(path, columns=1))
        assert np.isnan(values[0]) and values[1] == 3.0

    def test_empty_columns_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            CsvSource(tmp_path / "x.csv", columns=[])

    def test_malformed_count_observable(self, tmp_path):
        path = tmp_path / "dirty.csv"
        # one unparseable cell, one short row, one genuinely missing cell
        path.write_text("a,b\n1,x\n2\n3,\n4,5\n")
        source = CsvSource(path, columns=1)
        values = list(source)
        assert np.isnan(values[0]) and np.isnan(values[1]) and np.isnan(values[2])
        assert source.malformed_count == 2  # empty cell is missing, not malformed

    def test_malformed_count_resets_per_pass(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text("v\nx\n1.0\n")
        source = CsvSource(path)
        list(source)
        list(source)
        assert source.malformed_count == 1  # not doubled by the replay

    def test_strict_raises_with_location(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text("v\n1.0\noops\n")
        source = CsvSource(path, strict=True)
        with pytest.raises(MalformedRecordError, match=r"dirty\.csv:3.*'oops'"):
            list(source)

    def test_strict_accepts_missing_cells(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("v\n1.0\n\n2.0\n")
        values = list(CsvSource(path, strict=True))
        assert np.isnan(values[1])  # empty = missing reading, allowed


class TestInterleave:
    def test_round_robin(self):
        a = ArraySource([1.0, 2.0], name="a")
        b = ArraySource([10.0, 20.0], name="b")
        pairs = list(interleave([a, b]))
        assert pairs == [("a", 1.0), ("b", 10.0), ("a", 2.0), ("b", 20.0)]

    def test_stops_at_shortest(self):
        a = ArraySource([1.0], name="a")
        b = ArraySource([10.0, 20.0], name="b")
        pairs = list(interleave([a, b]))
        assert pairs == [("a", 1.0), ("b", 10.0)]

    def test_no_partial_round(self):
        # b runs out in round 2: a must NOT leak its round-2 tick.
        a = ArraySource([1.0, 2.0], name="a")
        b = ArraySource([10.0], name="b")
        pairs = list(interleave([a, b]))
        assert pairs == [("a", 1.0), ("b", 10.0)]

    def test_every_yielded_round_is_complete(self):
        a = ArraySource([1.0, 2.0, 3.0], name="a")
        b = ArraySource([10.0, 20.0], name="b")
        c = ArraySource([100.0, 200.0], name="c")
        pairs = list(interleave([a, b, c]))
        assert len(pairs) % 3 == 0
        assert pairs == [
            ("a", 1.0), ("b", 10.0), ("c", 100.0),
            ("a", 2.0), ("b", 20.0), ("c", 200.0),
        ]
