"""Unit tests for stream sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StreamExhaustedError, ValidationError
from repro.streams import ArraySource, CsvSource, GeneratorSource, interleave


class TestArraySource:
    def test_scalar_iteration(self):
        source = ArraySource([1.0, 2.0, 3.0])
        assert list(source) == [1.0, 2.0, 3.0]
        assert len(source) == 3

    def test_vector_iteration(self):
        source = ArraySource(np.arange(6.0).reshape(3, 2))
        rows = list(source)
        assert len(rows) == 3
        np.testing.assert_allclose(rows[1], [2.0, 3.0])

    def test_replayable(self):
        source = ArraySource([1.0, 2.0])
        assert list(source) == list(source)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            ArraySource(np.zeros((2, 2, 2)))

    def test_take(self):
        source = ArraySource([1.0, 2.0, 3.0])
        assert source.take(2) == [1.0, 2.0]
        assert source.take(99) == [1.0, 2.0, 3.0]


class TestGeneratorSource:
    def test_single_consumption(self):
        source = GeneratorSource(iter([1.0, 2.0]))
        assert list(source) == [1.0, 2.0]
        with pytest.raises(StreamExhaustedError):
            iter(source)

    def test_infinite_generator_with_take(self):
        def forever():
            t = 0
            while True:
                yield float(t)
                t += 1

        source = GeneratorSource(forever())
        assert source.take(4) == [0.0, 1.0, 2.0, 3.0]


class TestCsvSource:
    def test_reads_column(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n1,10.5\n2,11.5\n3,\n4,12.5\n")
        source = CsvSource(path, columns=1)
        values = list(source)
        assert values[0] == 10.5
        assert np.isnan(values[2])  # empty cell -> NaN
        assert values[3] == 12.5

    def test_no_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0\n2.0\n")
        assert list(CsvSource(path, skip_header=False)) == [1.0, 2.0]

    def test_vector_columns(self, tmp_path):
        path = tmp_path / "vec.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        rows = list(CsvSource(path, columns=[0, 1]))
        np.testing.assert_allclose(rows[0], [1.0, 2.0])

    def test_unparseable_becomes_nan(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("v\nx\n1.5\n")
        values = list(CsvSource(path))
        assert np.isnan(values[0]) and values[1] == 1.5

    def test_missing_column_becomes_nan(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1\n2,3\n")
        values = list(CsvSource(path, columns=1))
        assert np.isnan(values[0]) and values[1] == 3.0

    def test_empty_columns_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            CsvSource(tmp_path / "x.csv", columns=[])


class TestInterleave:
    def test_round_robin(self):
        a = ArraySource([1.0, 2.0], name="a")
        b = ArraySource([10.0, 20.0], name="b")
        pairs = list(interleave([a, b]))
        assert pairs == [("a", 1.0), ("b", 10.0), ("a", 2.0), ("b", 20.0)]

    def test_stops_at_shortest(self):
        a = ArraySource([1.0], name="a")
        b = ArraySource([10.0, 20.0], name="b")
        pairs = list(interleave([a, b]))
        assert pairs == [("a", 1.0), ("b", 10.0)]
