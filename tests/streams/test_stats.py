"""Unit tests for running statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.streams import EwmStats, RunningStats


class TestRunningStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(3.0, 2.0, size=500)
        stats = RunningStats()
        for value in values:
            stats.push(value)
        assert stats.count == 500
        assert stats.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stats.variance == pytest.approx(values.var(), rel=1e-9)
        assert stats.std == pytest.approx(values.std(), rel=1e-9)
        assert stats.minimum == values.min()
        assert stats.maximum == values.max()

    def test_empty_defaults(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        with pytest.raises(NotFittedError):
            stats.minimum
        with pytest.raises(NotFittedError):
            stats.maximum

    def test_single_value(self):
        stats = RunningStats()
        stats.push(7.0)
        assert stats.mean == 7.0
        assert stats.variance == 0.0

    def test_nan_ignored(self):
        stats = RunningStats()
        stats.push(1.0)
        stats.push(float("nan"))
        stats.push(3.0)
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_numerical_stability_large_offset(self):
        # Welford's point: huge offset, tiny variance.
        stats = RunningStats()
        for value in [1e9 + 1, 1e9 + 2, 1e9 + 3]:
            stats.push(value)
        assert stats.variance == pytest.approx(2.0 / 3.0, rel=1e-6)


class TestEwmStats:
    def test_constant_input_converges(self):
        stats = EwmStats(halflife=10)
        for _ in range(100):
            stats.push(5.0)
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(0.0, abs=1e-9)

    def test_tracks_level_change(self):
        stats = EwmStats(halflife=5)
        for _ in range(50):
            stats.push(0.0)
        for _ in range(50):
            stats.push(10.0)
        # 10 halflives after the jump: essentially converged.
        assert stats.mean == pytest.approx(10.0, abs=0.02)

    def test_variance_close_to_true_for_stationary_input(self, rng):
        stats = EwmStats(halflife=200)
        values = rng.normal(0.0, 3.0, size=5000)
        for value in values:
            stats.push(value)
        assert stats.std == pytest.approx(3.0, rel=0.15)

    def test_nan_ignored(self):
        stats = EwmStats(halflife=5)
        stats.push(1.0)
        stats.push(float("nan"))
        assert stats.count == 1
        assert stats.mean == 1.0

    def test_variance_never_negative(self, rng):
        stats = EwmStats(halflife=2)
        for value in rng.normal(size=200):
            stats.push(value)
            assert stats.variance >= 0.0
