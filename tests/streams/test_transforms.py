"""Unit tests for stream transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.streams import add_noise, clip_range, dropout, quantize, time_scale


class TestAddNoise:
    def test_zero_sigma_is_identity(self, rng):
        values = [1.0, 2.0, 3.0]
        assert list(add_noise(values, 0.0, rng)) == values

    def test_noise_statistics(self, rng):
        out = np.fromiter(add_noise(np.zeros(5000), 2.0, rng), dtype=float)
        assert abs(out.mean()) < 0.2
        assert out.std() == pytest.approx(2.0, rel=0.1)

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(ValidationError):
            list(add_noise([1.0], -1.0, rng))


class TestDropout:
    def test_probability_zero_keeps_everything(self, rng):
        values = list(range(100))
        out = list(dropout(values, 0.0, rng))
        assert not any(np.isnan(out))

    def test_probability_one_drops_everything(self, rng):
        out = list(dropout([1.0, 2.0], 1.0, rng))
        assert all(np.isnan(v) for v in out)

    def test_rate_approximately_respected(self, rng):
        out = np.fromiter(dropout(np.zeros(5000), 0.3, rng), dtype=float)
        assert np.isnan(out).mean() == pytest.approx(0.3, abs=0.05)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValidationError):
            list(dropout([1.0], 1.5, rng))


class TestTimeScale:
    def test_factor_one_is_identity(self):
        values = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(list(time_scale(values, 1.0)), values)

    def test_stretch_doubles_length(self):
        out = list(time_scale([0.0, 1.0], 2.0))
        assert len(out) == 4
        assert out[0] == 0.0 and out[-1] == 1.0

    def test_shrink_halves_length(self):
        out = list(time_scale(list(range(10)), 0.5))
        assert len(out) == 5

    def test_endpoints_preserved(self, rng):
        values = rng.normal(size=20)
        out = list(time_scale(values, 1.7))
        assert out[0] == pytest.approx(values[0])
        assert out[-1] == pytest.approx(values[-1])

    def test_stretched_pattern_still_matches_under_dtw(self, rng):
        """The transform exists to exercise exactly this property."""
        from repro.dtw import dtw_distance

        pattern = np.sin(np.linspace(0, 2 * np.pi, 40))
        stretched = np.asarray(list(time_scale(pattern, 1.5)))
        warped = dtw_distance(stretched, pattern)
        rigid = float(np.sum((pattern - stretched[: 40]) ** 2))
        assert warped < rigid / 5

    def test_empty_input(self):
        assert list(time_scale([], 2.0)) == []


class TestQuantizeAndClip:
    def test_quantize(self):
        assert list(quantize([0.24, 0.26], 0.5)) == [0.0, 0.5]

    def test_clip(self):
        assert list(clip_range([-5.0, 0.5, 5.0], 0.0, 1.0)) == [0.0, 0.5, 1.0]

    def test_clip_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            list(clip_range([1.0], 2.0, 1.0))
