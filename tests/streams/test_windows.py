"""Unit tests for sliding-window aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.streams.windows import Downsampler, RollingExtrema, RollingMean


class TestRollingMean:
    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            RollingMean(0)

    def test_matches_numpy_on_random_stream(self, rng):
        values = rng.normal(size=300)
        window = 16
        rolling = RollingMean(window)
        for t, value in enumerate(values):
            rolling.push(value)
            expected = values[max(0, t - window + 1) : t + 1]
            assert rolling.mean == pytest.approx(expected.mean(), rel=1e-9)
            assert rolling.variance == pytest.approx(
                expected.var(), rel=1e-6, abs=1e-9
            )

    def test_nan_occupies_slot_but_not_stats(self):
        rolling = RollingMean(3)
        rolling.push(1.0)
        rolling.push(float("nan"))
        rolling.push(3.0)
        assert rolling.count == 2
        assert rolling.mean == pytest.approx(2.0)
        rolling.push(5.0)  # evicts the 1.0
        assert rolling.mean == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(NotFittedError):
            RollingMean(3).mean


class TestRollingExtrema:
    def test_matches_numpy(self, rng):
        values = rng.normal(size=300)
        window = 11
        rolling = RollingExtrema(window)
        for t, value in enumerate(values):
            rolling.push(value)
            expected = values[max(0, t - window + 1) : t + 1]
            assert rolling.minimum == expected.min()
            assert rolling.maximum == expected.max()
            assert rolling.range == pytest.approx(
                expected.max() - expected.min()
            )

    def test_nan_skipped(self):
        rolling = RollingExtrema(3)
        rolling.push(5.0)
        rolling.push(float("nan"))
        assert rolling.maximum == 5.0

    def test_expiry(self):
        rolling = RollingExtrema(2)
        rolling.push(10.0)
        rolling.push(1.0)
        rolling.push(2.0)  # 10.0 now out of window
        assert rolling.maximum == 2.0

    def test_empty_raises(self):
        with pytest.raises(NotFittedError):
            RollingExtrema(2).minimum


class TestDownsampler:
    def test_block_average(self):
        down = Downsampler(3)
        assert down.push(1.0) is None
        assert down.push(2.0) is None
        assert down.push(3.0) == pytest.approx(2.0)
        assert down.pending == 0

    def test_nan_poisons_block(self):
        down = Downsampler(2)
        down.push(1.0)
        out = down.push(float("nan"))
        assert np.isnan(out)

    def test_factor_one_passthrough(self):
        down = Downsampler(1)
        assert down.push(7.0) == 7.0

    def test_rejects_bad_factor(self):
        with pytest.raises(ValidationError):
            Downsampler(0)

    def test_agrees_with_cascade_reduction(self, rng):
        """The cascade's internal reducer and the standalone one agree."""
        values = rng.normal(size=40)
        down = Downsampler(4)
        stand_alone = [v for v in (down.push(x) for x in values) if v is not None]
        blocked = values.reshape(-1, 4).mean(axis=1)
        np.testing.assert_allclose(stand_alone, blocked)
