"""Unit tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6", "fig7", "fig8", "fig9", "table2", "ablations"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--scale", "0.2", "--dataset", "chirp"]) == 0
        out = capsys.readouterr().out
        assert "MaskedChirp" in out

    def test_table2_runs(self, capsys):
        assert main(["table2", "--scale", "0.15", "--dataset", "chirp"]) == 0
        out = capsys.readouterr().out
        assert "output time" in out


class TestGenerateCommand:
    def test_generate_writes_three_files(self, tmp_path, capsys):
        status = main(["generate", "ecg", str(tmp_path / "out"), "--seed", "3"])
        assert status == 0
        out = capsys.readouterr().out
        assert "ECG" in out
        for name in ("stream.csv", "query.csv", "truth.csv"):
            assert (tmp_path / "out" / name).exists()

    def test_generate_then_monitor_roundtrip(self, tmp_path, capsys):
        from repro.datasets import build

        data = build("ecg", beats=80, seed=3)
        main(["generate", "ecg", str(tmp_path)])
        # Feeding the generated CSVs back through the monitor command
        # must produce at least the planted anomalies.
        status = main(
            [
                "monitor",
                str(tmp_path / "stream.csv"),
                str(tmp_path / "query.csv"),
                "--epsilon",
                str(data.suggested_epsilon),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out


class TestMonitorCommand:
    def test_monitor_finds_pattern(self, tmp_path, capsys, rng):
        pattern = rng.normal(size=6)
        stream = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out
        assert "ticks 31..36" in out
        assert "66 ticks processed, 1 matches" in out

    def test_monitor_handles_missing_cells(self, tmp_path, capsys):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\n\n2.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "0.1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "3 ticks processed" in out

    def test_monitor_warns_on_malformed_cells(self, tmp_path, capsys):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\noops\n2.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "0.1"]
        )
        assert status == 0
        assert "1 malformed CSV cells" in capsys.readouterr().out

    def test_monitor_strict_csv_fails_fast(self, tmp_path):
        from repro.exceptions import MalformedRecordError

        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\noops\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        with pytest.raises(MalformedRecordError):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "0.1", "--strict-csv"])


class TestSupervisedMonitorCommand:
    def _csvs(self, tmp_path, rng):
        pattern = rng.normal(size=6)
        stream = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        return stream_csv, query_csv

    def test_supervised_run_writes_snapshots(self, tmp_path, capsys, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        ckpt = tmp_path / "ckpt"
        status = main(
            ["monitor", str(stream_csv), str(query_csv),
             "--epsilon", "1e-9",
             "--checkpoint-dir", str(ckpt), "--checkpoint-every", "10"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out
        assert "ticks 31..36" in out
        assert "snapshots" in out
        assert list(ckpt.glob("checkpoint-*.json"))

    def test_resume_continues_from_snapshot(self, tmp_path, capsys, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        ckpt = tmp_path / "ckpt"
        main(["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9",
              "--checkpoint-dir", str(ckpt)])
        capsys.readouterr()
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9",
             "--checkpoint-dir", str(ckpt), "--resume"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "resumed from snapshot at tick 66" in out
        assert "0 ticks processed" in out  # nothing left to replay

    def test_resume_requires_checkpoint_dir(self, tmp_path, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        with pytest.raises(SystemExit):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "1e-9", "--resume"])
