"""Unit tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6", "fig7", "fig8", "fig9", "table2", "ablations"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--scale", "0.2", "--dataset", "chirp"]) == 0
        out = capsys.readouterr().out
        assert "MaskedChirp" in out

    def test_table2_runs(self, capsys):
        assert main(["table2", "--scale", "0.15", "--dataset", "chirp"]) == 0
        out = capsys.readouterr().out
        assert "output time" in out


class TestGenerateCommand:
    def test_generate_writes_three_files(self, tmp_path, capsys):
        status = main(["generate", "ecg", str(tmp_path / "out"), "--seed", "3"])
        assert status == 0
        out = capsys.readouterr().out
        assert "ECG" in out
        for name in ("stream.csv", "query.csv", "truth.csv"):
            assert (tmp_path / "out" / name).exists()

    def test_generate_then_monitor_roundtrip(self, tmp_path, capsys):
        from repro.datasets import build

        data = build("ecg", beats=80, seed=3)
        main(["generate", "ecg", str(tmp_path)])
        # Feeding the generated CSVs back through the monitor command
        # must produce at least the planted anomalies.
        status = main(
            [
                "monitor",
                str(tmp_path / "stream.csv"),
                str(tmp_path / "query.csv"),
                "--epsilon",
                str(data.suggested_epsilon),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out


class TestMonitorCommand:
    def test_monitor_finds_pattern(self, tmp_path, capsys, rng):
        pattern = rng.normal(size=6)
        stream = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out
        assert "ticks 31..36" in out
        assert "66 ticks processed, 1 matches" in out

    def test_monitor_handles_missing_cells(self, tmp_path, capsys):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\n\n2.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "0.1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "3 ticks processed" in out

    def test_monitor_warns_on_malformed_cells(self, tmp_path, capsys):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\noops\n2.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "0.1"]
        )
        assert status == 0
        assert "1 malformed CSV cells" in capsys.readouterr().out

    def test_monitor_strict_csv_fails_fast(self, tmp_path):
        from repro.exceptions import MalformedRecordError

        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\noops\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        with pytest.raises(MalformedRecordError):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "0.1", "--strict-csv"])

    def test_monitor_dynnorm_finds_shifted_copy(self, tmp_path, capsys, rng):
        # An offset+scaled copy of the query is invisible to raw DTW at
        # this epsilon but a distance-0 window per-window normalised.
        pattern = np.array([0.0, 2.0, -1.0, 1.0, 0.5, -0.5])
        stream = np.concatenate(
            [rng.normal(scale=0.3, size=30), 3.0 * pattern + 50.0,
             rng.normal(scale=0.3, size=10)]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        status = main(
            ["monitor", str(stream_csv), str(query_csv),
             "--epsilon", "0.25", "--matcher", "dynnorm",
             "--min-length", "6", "--max-length", "6"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "ticks 31..36" in out

    def test_band_knobs_require_dynnorm_matcher(self, tmp_path, rng):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\n2.0\n3.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        for flag, value in (
            ("--min-length", "4"),
            ("--max-length", "8"),
            ("--min-std", "0.1"),
        ):
            with pytest.raises(SystemExit, match="requires --matcher dynnorm"):
                main(["monitor", str(stream_csv), str(query_csv),
                      "--epsilon", "0.1", flag, value])


class TestSupervisedMonitorCommand:
    def _csvs(self, tmp_path, rng):
        pattern = rng.normal(size=6)
        stream = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        return stream_csv, query_csv

    def test_supervised_run_writes_snapshots(self, tmp_path, capsys, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        ckpt = tmp_path / "ckpt"
        status = main(
            ["monitor", str(stream_csv), str(query_csv),
             "--epsilon", "1e-9",
             "--checkpoint-dir", str(ckpt), "--checkpoint-every", "10"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out
        assert "ticks 31..36" in out
        assert "snapshots" in out
        assert list(ckpt.glob("checkpoint-*.json"))

    def test_resume_continues_from_snapshot(self, tmp_path, capsys, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        ckpt = tmp_path / "ckpt"
        main(["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9",
              "--checkpoint-dir", str(ckpt)])
        capsys.readouterr()
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9",
             "--checkpoint-dir", str(ckpt), "--resume"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "resumed from snapshot at tick 66" in out
        assert "0 ticks processed" in out  # nothing left to replay

    def test_resume_requires_checkpoint_dir(self, tmp_path, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        with pytest.raises(SystemExit):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "1e-9", "--resume"])


class TestShardedMonitorCommand:
    def _csvs(self, tmp_path, rng):
        pattern = rng.normal(size=6)
        stream = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in stream) + "\n"
        )
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in pattern) + "\n"
        )
        return stream_csv, query_csv

    def test_sharded_matches_single_process_output(
        self, tmp_path, capsys, rng
    ):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        assert main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9"]
        ) == 0
        single = capsys.readouterr().out
        assert main(
            ["monitor", str(stream_csv), str(query_csv),
             "--epsilon", "1e-9", "--shards", "2"]
        ) == 0
        sharded = capsys.readouterr().out
        # Same matches (the sharded runtime's byte-identity contract);
        # the totals line differs in wording only.
        def matches(text):
            return [l for l in text.splitlines() if l.startswith("match #")]
        assert matches(sharded) == matches(single)
        assert "66 ticks processed across 2 shards" in sharded
        assert "0 worker restarts" in sharded

    def test_sharded_skips_non_finite_values(self, tmp_path, capsys):
        stream_csv = tmp_path / "stream.csv"
        stream_csv.write_text("v\n1.0\n\n2.0\n1.0\n2.0\n")
        query_csv = tmp_path / "query.csv"
        query_csv.write_text("v\n1.0\n2.0\n")
        status = main(
            ["monitor", str(stream_csv), str(query_csv),
             "--epsilon", "0.1", "--shards", "1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "4 ticks processed" in out
        assert "1 non-finite stream values skipped" in out

    def test_sharded_writes_checkpoints_and_metrics(
        self, tmp_path, capsys, rng
    ):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        ckpt = tmp_path / "ckpt"
        metrics = tmp_path / "metrics.prom"
        status = main(
            ["monitor", str(stream_csv), str(query_csv), "--epsilon", "1e-9",
             "--shards", "2", "--checkpoint-dir", str(ckpt),
             "--checkpoint-every", "10", "--metrics-out", str(metrics)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "match #1" in out
        # Per-unit shard snapshot directories exist and hold snapshots.
        unit_dirs = sorted(p.name for p in ckpt.iterdir() if p.is_dir())
        assert unit_dirs and all(d.startswith("u") for d in unit_dirs)
        assert any(
            list(d.glob("checkpoint-*.json")) for d in ckpt.iterdir()
        )
        text = metrics.read_text()
        assert "shard_restarts_total" in text
        assert "spring_stream_ticks_total" in text

    def test_sharded_rejects_resume(self, tmp_path, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        with pytest.raises(SystemExit):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "1e-9", "--shards", "2", "--resume"])

    def test_sharded_rejects_bad_shard_count(self, tmp_path, rng):
        stream_csv, query_csv = self._csvs(tmp_path, rng)
        with pytest.raises(SystemExit):
            main(["monitor", str(stream_csv), str(query_csv),
                  "--epsilon", "1e-9", "--shards", "0"])


class TestSignalHandling:
    """SIGTERM/SIGINT stop the monitor cooperatively (exit 0).

    The stream arrives through a FIFO so the subprocess is genuinely
    mid-run when the signal lands: the test controls exactly how many
    ticks exist before and after the signal, no sleep races.
    """

    def _spawn(self, tmp_path, rng, extra_args):
        import os
        import subprocess
        import sys

        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "value\n" + "\n".join(f"{v}" for v in rng.normal(size=4)) + "\n"
        )
        fifo = tmp_path / "stream.fifo"
        os.mkfifo(fifo)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "monitor", str(fifo),
             str(query_csv), "--epsilon", "1e-9"] + extra_args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            # Own process group: on failure the whole tree (including
            # any shard workers) can be killed, so communicate() never
            # blocks on a pipe held open by an orphaned grandchild.
            start_new_session=True,
        )
        return child, fifo

    def _run_stop_drill(self, tmp_path, rng, extra_args, wait_ready):
        import contextlib
        import os
        import signal

        child, fifo = self._spawn(tmp_path, rng, extra_args)
        writer = open(fifo, "w")
        try:
            writer.write("value\n")
            for _ in range(40):
                writer.write(f"{rng.normal():.6f}\n")
            writer.flush()
            wait_ready()
            child.send_signal(signal.SIGTERM)
            # Unblock the CSV read so the loop observes the flag.  The
            # child closes its end after any number of trailer rows —
            # that early close IS the cooperative stop, not a failure.
            with contextlib.suppress(BrokenPipeError):
                for _ in range(20):
                    writer.write(f"{rng.normal():.6f}\n")
                    writer.flush()
            out, _ = child.communicate(timeout=120)
        finally:
            with contextlib.suppress(BrokenPipeError):
                writer.close()
            if child.poll() is None:
                with contextlib.suppress(ProcessLookupError):
                    os.killpg(child.pid, signal.SIGKILL)
                child.communicate(timeout=30)
        return child.returncode, out

    def test_supervised_sigterm_snapshots_and_exits_zero(
        self, tmp_path, rng
    ):
        import time

        ckpt = tmp_path / "ckpt"

        def ready():
            deadline = time.monotonic() + 60
            while not list(ckpt.glob("checkpoint-*.json")):
                assert time.monotonic() < deadline, "no snapshot appeared"
                time.sleep(0.05)

        code, out = self._run_stop_drill(
            tmp_path,
            rng,
            ["--checkpoint-dir", str(ckpt), "--checkpoint-every", "10"],
            ready,
        )
        assert code == 0, out
        assert "stop requested" in out
        assert "continue with --resume" in out
        snapshots = sorted(ckpt.glob("checkpoint-*.json"))
        assert snapshots
        # The final snapshot sits at the stop tick, past the last
        # cadence boundary (40+ ticks were written before the signal).
        last = int(snapshots[-1].stem.split("-")[1])
        assert last >= 40

    def test_sharded_sigterm_drains_workers_and_exits_zero(
        self, tmp_path, rng
    ):
        import time

        ckpt = tmp_path / "ckpt"

        def ready():
            deadline = time.monotonic() + 60
            while not any(
                list(d.glob("checkpoint-*.json"))
                for d in ckpt.glob("u*")
            ):
                assert time.monotonic() < deadline, "no shard snapshot"
                time.sleep(0.05)

        code, out = self._run_stop_drill(
            tmp_path,
            rng,
            ["--shards", "2", "--checkpoint-dir", str(ckpt),
             "--checkpoint-every", "10"],
            ready,
        )
        assert code == 0, out
        assert "stop requested: workers drained" in out
        assert "0 worker restarts" in out
