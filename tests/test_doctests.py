"""Run the executable examples embedded in module docstrings.

Documentation that asserts keeps itself honest: the paper's worked
example appears in several docstrings, and these tests re-execute each
one so the docs can never drift from the code.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.fused
import repro.core.spring
import repro.core.monitor
import repro.core.topk
import repro.dtw.search

MODULES_WITH_EXAMPLES = [
    repro.core.spring,
    repro.core.monitor,
    repro.core.fused,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "expected at least one example"
