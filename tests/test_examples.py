"""Smoke tests: every example script runs and prints its key result.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in-process (cheap) with its module namespace.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "X[2:5]" in out  # the paper example
        assert "matched ticks" in out

    def test_sensor_monitoring(self, capsys):
        out = _run_example("sensor_monitoring", capsys)
        assert "[ALERT]" in out
        assert "basement" in out  # the quiet sensor is reported too

    def test_seismic_monitoring(self, capsys):
        out = _run_example("seismic_monitoring", capsys)
        assert "SPRING found 2 event(s)" in out
        assert "rigid sliding-window matcher found 0" in out

    def test_mocap_matching(self, capsys):
        out = _run_example("mocap_matching", capsys)
        assert "session labelling PERFECT" in out

    def test_word_spotting(self, capsys):
        out = _run_example("word_spotting", capsys)
        assert "3/3 planted utterances found" in out

    def test_template_learning(self, capsys):
        out = _run_example("template_learning", capsys)
        assert "12/12 beats" in out
        assert "top-5 closest beats" in out

    def test_live_replay(self, capsys):
        out = _run_example("live_replay", capsys)
        assert "2 alerts" in out
        assert "vib-east" in out and "vib-west" in out
