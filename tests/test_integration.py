"""End-to-end integration tests across subsystem boundaries.

Each test wires several modules together the way a real deployment
would: dataset generators feeding monitors, checkpoints mid-stream,
ring buffers serving match context, CSV round-trips into the CLI-style
pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Spring, StreamMonitor, TopKSpring
from repro.core.checkpoint import dump_json, load_json
from repro.datasets import build, export_csv, masked_chirp
from repro.datasets.ecg import ecg_stream
from repro.eval import score_matches
from repro.streams import ArraySource, CsvSource, RingBuffer, RollingExtrema


class TestMonitorOverGeneratedData:
    def test_chirp_fleet_with_checkpoint_restart(self):
        """A monitor runs half a stream, is checkpointed matcher by
        matcher, 'restarts', and finishes with the same total alerts as
        an uninterrupted run."""
        data = masked_chirp(n=6000, query_length=512, bursts=3, seed=2)
        half = data.n // 2

        def run_uninterrupted():
            spring = Spring(data.query, epsilon=data.suggested_epsilon)
            matches = spring.extend(data.values)
            final = spring.flush()
            if final:
                matches.append(final)
            return [(m.start, m.end) for m in matches]

        spring = Spring(data.query, epsilon=data.suggested_epsilon)
        first_half = spring.extend(data.values[:half])
        blob = dump_json(spring)  # process "dies" here
        restored = load_json(blob)
        second_half = restored.extend(data.values[half:])
        final = restored.flush()
        if final:
            second_half.append(final)
        combined = [(m.start, m.end) for m in first_half + second_half]
        assert combined == run_uninterrupted()
        score = score_matches(
            first_half + second_half, data.occurrence_intervals()
        )
        assert score.perfect

    def test_ring_buffer_serves_match_context(self):
        """Alert handling: when a match fires, the raw values for its
        interval are still in a modest ring buffer."""
        data = ecg_stream(beats=80, seed=4)
        buffer = RingBuffer(capacity=4 * data.m)
        spring = Spring(data.query, epsilon=data.suggested_epsilon)
        contexts = []
        for value in data.values:
            buffer.push(float(value))
            match = spring.step(value)
            if match:
                contexts.append(buffer.window(match.start, match.end))
        final = spring.flush()
        if final:
            contexts.append(buffer.window(final.start, final.end))
        assert len(contexts) == len(data.occurrences)
        for context in contexts:
            assert context.shape[0] > data.m / 2  # plausible beat length


class TestCsvPipeline:
    def test_export_then_monitor_matches_direct(self, tmp_path):
        """generate -> CSV -> CsvSource -> Spring equals the in-memory
        run, including missing-value cells."""
        data = build("temperature", n=4000, day_length=300, seed=5)
        paths = export_csv(data, tmp_path)

        direct = Spring(data.query, epsilon=data.suggested_epsilon)
        expected = direct.extend(data.values)
        final = direct.flush()
        if final:
            expected.append(final)

        query = np.asarray(list(CsvSource(paths["query"])), dtype=np.float64)
        replayed = Spring(query, epsilon=data.suggested_epsilon)
        got = replayed.extend(CsvSource(paths["stream"]))
        final = replayed.flush()
        if final:
            got.append(final)
        assert [(m.start, m.end) for m in got] == [
            (m.start, m.end) for m in expected
        ]


class TestMultiComponentDashboard:
    def test_monitor_plus_rolling_stats_plus_topk(self):
        """A dashboard pipeline: rolling extremes for display, a
        monitor for alerts, a top-k board for history — one pass."""
        data = masked_chirp(n=5000, query_length=400, bursts=3, seed=7)
        monitor = StreamMonitor()
        monitor.add_stream("main")
        monitor.add_query("burst", data.query, epsilon=data.suggested_epsilon)
        extremes = RollingExtrema(window=200)
        top = TopKSpring(data.query, k=2)

        alerts = []
        seen_max = -np.inf
        for value in data.values:
            extremes.push(float(value))
            seen_max = max(seen_max, extremes.maximum)
            alerts.extend(monitor.push("main", float(value)))
            top.step(float(value))
        alerts.extend(monitor.flush())
        top.flush()

        # Every planted burst alerted (borderline extra local optima may
        # also clear the generator's generous suggested epsilon).
        score = score_matches(
            [e.match for e in alerts], data.occurrence_intervals()
        )
        assert score.recall == 1.0
        assert len(top.best()) == 2
        # The top-2 entries are among the alerts' intervals.
        alert_intervals = {(e.match.start, e.match.end) for e in alerts}
        for match in top.best():
            assert (match.start, match.end) in alert_intervals
        assert seen_max > 0.5  # the window passed over the bursts


class TestSourcesIntoMatchers:
    def test_array_source_is_replayable_into_two_matchers(self, rng):
        pattern = rng.normal(size=6)
        values = np.concatenate(
            [rng.normal(size=30) + 9, pattern, rng.normal(size=30) + 9]
        )
        source = ArraySource(values)
        a = Spring(pattern, epsilon=1e-9)
        b = Spring(pattern, epsilon=1e-9)
        matches_a = a.extend(source)
        matches_b = b.extend(source)  # replay works for array sources
        assert [(m.start, m.end) for m in matches_a] == [
            (m.start, m.end) for m in matches_b
        ]
