"""Public-API surface tests: imports, __all__ hygiene, docstrings."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.dtw",
    "repro.baselines",
    "repro.streams",
    "repro.runtime",
    "repro.obs",
    "repro.datasets",
    "repro.eval",
]


class TestAllExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, f"{module_name} exports nothing"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version_present(self):
        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 20

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
                public_methods = [
                    member
                    for member_name, member in inspect.getmembers(obj)
                    if inspect.isfunction(member)
                    and not member_name.startswith("_")
                ] if inspect.isclass(obj) else []
                for method in public_methods:
                    assert method.__doc__, (
                        f"repro.{name}.{method.__name__} lacks a docstring"
                    )


class TestQuickstartContract:
    def test_readme_quickstart_snippet(self):
        """The exact snippet in README.md must work as printed."""
        from repro import Spring

        spring = Spring(query=[11, 6, 9, 4], epsilon=15)
        reports = []
        for x in [5, 12, 6, 10, 6, 5, 13]:
            match = spring.step(x)
            if match:
                reports.append(match)
        assert len(reports) == 1
        assert str(reports[0]) == (
            "Match(X[2:5], len=4, dist=6, reported@7)"
        )
