"""Unit tests for the shared validation helpers and exception taxonomy."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_scalar_sequence,
    as_vector_sequence,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_dimensions,
    check_threshold,
)
from repro.exceptions import (
    DimensionMismatchError,
    EmptySequenceError,
    NotFittedError,
    ReproError,
    StreamExhaustedError,
    ValidationError,
)


class TestScalarSequence:
    def test_accepts_lists_tuples_arrays(self):
        for values in ([1, 2], (1.0, 2.0), np.array([1.0, 2.0])):
            out = as_scalar_sequence(values)
            assert out.dtype == np.float64
            assert out.shape == (2,)

    def test_rejects_empty(self):
        with pytest.raises(EmptySequenceError):
            as_scalar_sequence([])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_scalar_sequence([[1.0]])

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValidationError):
            as_scalar_sequence([1.0, np.nan])

    def test_allows_nan_when_asked(self):
        out = as_scalar_sequence([1.0, np.nan], allow_nan=True)
        assert np.isnan(out[1])

    def test_never_allows_inf(self):
        with pytest.raises(ValidationError):
            as_scalar_sequence([np.inf], allow_nan=True)

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_scalar_sequence(["a"])


class TestVectorSequence:
    def test_promotes_1d(self):
        out = as_vector_sequence([1.0, 2.0])
        assert out.shape == (2, 1)

    def test_keeps_2d(self):
        out = as_vector_sequence(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_rejects_zero_width(self):
        with pytest.raises(ValidationError):
            as_vector_sequence(np.zeros((3, 0)))

    def test_dimension_check(self):
        a = as_vector_sequence(np.zeros((2, 3)))
        b = as_vector_sequence(np.zeros((5, 3)))
        check_same_dimensions(a, b, "a", "b")
        c = as_vector_sequence(np.zeros((2, 4)))
        with pytest.raises(DimensionMismatchError):
            check_same_dimensions(a, c, "a", "c")


class TestNumericChecks:
    def test_positive(self):
        assert check_positive(2, "x") == 2.0
        for bad in (0, -1, np.nan, np.inf, "a"):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_nonnegative(self):
        assert check_nonnegative(0, "x") == 0.0
        with pytest.raises(ValidationError):
            check_nonnegative(-0.1, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValidationError):
                check_probability(bad, "p")

    def test_threshold_allows_inf(self):
        assert check_threshold(np.inf) == np.inf
        assert check_threshold(0) == 0.0
        for bad in (-1, np.nan, "x"):
            with pytest.raises(ValidationError):
                check_threshold(bad)


class TestExceptionTaxonomy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ValidationError,
            EmptySequenceError,
            DimensionMismatchError,
            NotFittedError,
            StreamExhaustedError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)
